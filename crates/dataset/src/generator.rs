//! Generative model and train/test split for the synthetic dataset.

use crate::{DamageLabel, ImageAttribute, ImageId, SyntheticImage};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Layout of the visual-evidence vector shared with classifier simulators.
///
/// The vector is organized as `FAMILIES` feature families — deep texture
/// (family 0), handcrafted gradient/SIFT-like (family 1) and spatial/heatmap
/// (family 2) — each containing one `BLOCK`-dimensional sub-block per damage
/// class. Different simulated classifiers weight different families, which is
/// what makes the query-by-committee disagreement meaningful.
pub mod visual_layout {
    use crate::DamageLabel;

    /// Number of feature families.
    pub const FAMILIES: usize = 3;
    /// Dimensions per (family, class) sub-block.
    pub const BLOCK: usize = 2;
    /// Total dimension of the visual-evidence vector.
    pub const VISUAL_DIM: usize = FAMILIES * DamageLabel::COUNT * BLOCK;

    /// Index of dimension `k` of class `class` within family `family`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn dim(family: usize, class: usize, k: usize) -> usize {
        assert!(family < FAMILIES, "family out of range");
        assert!(class < DamageLabel::COUNT, "class out of range");
        assert!(k < BLOCK, "block offset out of range");
        family * DamageLabel::COUNT * BLOCK + class * BLOCK + k
    }
}

pub(crate) use visual_layout::{BLOCK, FAMILIES, VISUAL_DIM};

/// Configuration for [`Dataset::generate`].
///
/// Use [`DatasetConfig::paper`] to match the paper's setup (960 images,
/// 560/400 split, balanced classes) and override fields with the `with_*`
/// builder methods.
///
/// # Example
///
/// ```
/// use crowdlearn_dataset::DatasetConfig;
///
/// let cfg = DatasetConfig::paper().with_seed(42).with_fake_rate(0.1);
/// assert_eq!(cfg.total(), 960);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    total: usize,
    train_count: usize,
    fake_rate: f64,
    close_up_rate: f64,
    low_resolution_rate: f64,
    implicit_rate: f64,
    signal: f64,
    noise: f64,
    deceptive_boost: f64,
    low_resolution_attenuation: f64,
    ambiguity_rate: f64,
    ambiguity_attenuation: f64,
    family_drift: bool,
    context_fidelity: f64,
    context_noise: f64,
    seed: u64,
}

impl DatasetConfig {
    /// The paper's dataset shape: 960 images, 560 train / 400 test, balanced
    /// classes, with failure-mode rates chosen so that AI-only accuracy lands
    /// in the high-0.7s/low-0.8s band of Table II.
    pub fn paper() -> Self {
        Self {
            total: 960,
            train_count: 560,
            fake_rate: 0.035,
            close_up_rate: 0.025,
            low_resolution_rate: 0.08,
            implicit_rate: 0.03,
            signal: 1.0,
            noise: 0.55,
            deceptive_boost: 1.5,
            low_resolution_attenuation: 0.3,
            ambiguity_rate: 0.25,
            ambiguity_attenuation: 0.55,
            family_drift: false,
            context_fidelity: 0.92,
            context_noise: 0.08,
            seed: 0x0ec0ada,
        }
    }

    /// Total number of images to generate.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of images reserved for the training split.
    pub fn train_count(&self) -> usize {
        self.train_count
    }

    /// RNG seed used for generation.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fraction of images that are fake (photoshopped).
    pub fn fake_rate(&self) -> f64 {
        self.fake_rate
    }

    /// Fraction of images that are misleading close-ups.
    pub fn close_up_rate(&self) -> f64 {
        self.close_up_rate
    }

    /// Fraction of images that are low-resolution.
    pub fn low_resolution_rate(&self) -> f64 {
        self.low_resolution_rate
    }

    /// Fraction of images with implicit (context-only) damage.
    pub fn implicit_rate(&self) -> f64 {
        self.implicit_rate
    }

    /// Fraction of *plain* images lying on an ambiguous severity boundary —
    /// hard for AI (attenuated visual evidence) and for humans (correlated
    /// confusion with the adjacent class) alike.
    pub fn ambiguity_rate(&self) -> f64 {
        self.ambiguity_rate
    }

    /// Visual-signal multiplier applied to ambiguous images.
    pub fn ambiguity_attenuation(&self) -> f64 {
        self.ambiguity_attenuation
    }

    /// Whether feature-family drift is enabled (see
    /// [`DatasetConfig::with_family_drift`]).
    pub fn family_drift(&self) -> bool {
        self.family_drift
    }

    /// Enables *feature-family drift* across the test stream: as the
    /// disaster unfolds, the informative visual evidence migrates from the
    /// deep-texture family toward the handcrafted-gradient family (think:
    /// early close-range smartphone shots giving way to distant/aerial
    /// footage). Classifiers that lean on one family lose accuracy over
    /// time while others gain — the non-stationarity that MIC's *dynamic*
    /// expert-weight updates exist to track (paper §IV-D). Training-split
    /// images are generated at phase 0, so models are calibrated to the
    /// early regime.
    pub fn with_family_drift(mut self, enabled: bool) -> Self {
        self.family_drift = enabled;
        self
    }

    /// Sets the ambiguous-plain-image rate.
    pub fn with_ambiguity_rate(mut self, rate: f64) -> Self {
        self.ambiguity_rate = rate;
        self
    }

    /// Sets the total image count.
    pub fn with_total(mut self, total: usize) -> Self {
        self.total = total;
        self
    }

    /// Sets the training-split size.
    pub fn with_train_count(mut self, train_count: usize) -> Self {
        self.train_count = train_count;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fake-image rate.
    pub fn with_fake_rate(mut self, rate: f64) -> Self {
        self.fake_rate = rate;
        self
    }

    /// Sets the close-up rate.
    pub fn with_close_up_rate(mut self, rate: f64) -> Self {
        self.close_up_rate = rate;
        self
    }

    /// Sets the low-resolution rate.
    pub fn with_low_resolution_rate(mut self, rate: f64) -> Self {
        self.low_resolution_rate = rate;
        self
    }

    /// Sets the implicit-damage rate.
    pub fn with_implicit_rate(mut self, rate: f64) -> Self {
        self.implicit_rate = rate;
        self
    }

    /// Sets the visual feature noise level (higher = harder for AI).
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the contextual-evidence fidelity (higher = easier for humans).
    pub fn with_context_fidelity(mut self, fidelity: f64) -> Self {
        self.context_fidelity = fidelity;
        self
    }

    fn validate(&self) {
        assert!(self.total >= DamageLabel::COUNT, "dataset too small");
        assert!(
            self.train_count < self.total,
            "train split must leave a non-empty test set"
        );
        let rates = [
            self.fake_rate,
            self.close_up_rate,
            self.low_resolution_rate,
            self.implicit_rate,
        ];
        assert!(
            rates.iter().all(|r| (0.0..=1.0).contains(r)),
            "attribute rates must be in [0, 1]"
        );
        assert!(
            rates.iter().sum::<f64>() <= 1.0,
            "attribute rates must sum to at most 1"
        );
        assert!(
            self.noise >= 0.0 && self.signal > 0.0,
            "invalid evidence scales"
        );
        assert!(
            (0.0..=1.0).contains(&self.context_fidelity),
            "context fidelity must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.ambiguity_rate),
            "ambiguity rate must be in [0, 1]"
        );
        assert!(
            self.ambiguity_attenuation > 0.0 && self.ambiguity_attenuation <= 1.0,
            "ambiguity attenuation must be in (0, 1]"
        );
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A generated dataset with a stratified train/test split.
///
/// Images are stored in split order: indices `0..train_count` are the
/// training set and the remainder is the test set. [`ImageId`]s are stable
/// indices into this order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    images: Vec<SyntheticImage>,
    train_count: usize,
    config: DatasetConfig,
}

impl Dataset {
    /// Generates a dataset from `config`. Deterministic in `config.seed()`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see [`DatasetConfig`]
    /// field docs: rates in `[0, 1]` summing to at most 1, train split
    /// smaller than the total).
    pub fn generate(config: &DatasetConfig) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Balanced ground-truth labels.
        let mut truths: Vec<DamageLabel> = (0..config.total)
            .map(|i| DamageLabel::from_index(i % DamageLabel::COUNT))
            .collect();
        truths.shuffle(&mut rng);

        // Assign failure-mode attributes to compatible truth classes:
        // Fake/CloseUp require NoDamage ground truth; LowResolution/Implicit
        // require actual damage.
        let mut attributes = vec![ImageAttribute::Plain; config.total];
        let mut no_damage_pool: Vec<usize> = truths
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == DamageLabel::NoDamage)
            .map(|(i, _)| i)
            .collect();
        let mut damaged_pool: Vec<usize> = truths
            .iter()
            .enumerate()
            .filter(|(_, t)| **t != DamageLabel::NoDamage)
            .map(|(i, _)| i)
            .collect();
        no_damage_pool.shuffle(&mut rng);
        damaged_pool.shuffle(&mut rng);

        let count_for = |rate: f64| (rate * config.total as f64).round() as usize;
        for _ in 0..count_for(config.fake_rate).min(no_damage_pool.len()) {
            attributes[no_damage_pool.pop().expect("pool checked")] = ImageAttribute::Fake;
        }
        for _ in 0..count_for(config.close_up_rate).min(no_damage_pool.len()) {
            attributes[no_damage_pool.pop().expect("pool checked")] = ImageAttribute::CloseUp;
        }
        for _ in 0..count_for(config.low_resolution_rate).min(damaged_pool.len()) {
            attributes[damaged_pool.pop().expect("pool checked")] = ImageAttribute::LowResolution;
        }
        for _ in 0..count_for(config.implicit_rate).min(damaged_pool.len()) {
            attributes[damaged_pool.pop().expect("pool checked")] = ImageAttribute::Implicit;
        }

        // Stratified split: interleave classes so both splits stay balanced.
        let mut order: Vec<usize> = Vec::with_capacity(config.total);
        {
            let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); DamageLabel::COUNT];
            for (i, t) in truths.iter().enumerate() {
                by_class[t.index()].push(i);
            }
            for class in &mut by_class {
                class.shuffle(&mut rng);
            }
            let mut cursors = [0usize; DamageLabel::COUNT];
            while order.len() < config.total {
                for (c, class) in by_class.iter().enumerate() {
                    if cursors[c] < class.len() {
                        order.push(class[cursors[c]]);
                        cursors[c] += 1;
                    }
                }
            }
        }

        let images = order
            .iter()
            .enumerate()
            .map(|(new_idx, &old_idx)| {
                // Drift phase: 0 for the whole training split, then advancing
                // 0..1 across the test split in stream order.
                let phase = if config.family_drift && new_idx >= config.train_count {
                    (new_idx - config.train_count) as f64
                        / (config.total - config.train_count).max(1) as f64
                } else {
                    0.0
                };
                generate_image(
                    ImageId(new_idx as u32),
                    truths[old_idx],
                    attributes[old_idx],
                    phase,
                    config,
                    &mut rng,
                )
            })
            .collect();

        Self {
            images,
            train_count: config.train_count,
            config: config.clone(),
        }
    }

    /// Total number of images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty (never true for generated datasets).
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// All images in split order (train first, then test).
    pub fn images(&self) -> &[SyntheticImage] {
        &self.images
    }

    /// The training split.
    pub fn train(&self) -> &[SyntheticImage] {
        &self.images[..self.train_count]
    }

    /// The held-out test split, streamed through sensing cycles.
    pub fn test(&self) -> &[SyntheticImage] {
        &self.images[self.train_count..]
    }

    /// Looks up an image by id. Returns `None` for unknown ids.
    pub fn image(&self, id: ImageId) -> Option<&SyntheticImage> {
        self.images.get(id.0 as usize)
    }

    /// The configuration that generated this dataset.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Counts of images per attribute across the whole dataset.
    pub fn attribute_counts(&self) -> [(ImageAttribute, usize); 5] {
        let mut out = ImageAttribute::ALL.map(|a| (a, 0usize));
        for img in &self.images {
            let slot = out
                .iter_mut()
                .find(|(a, _)| *a == img.attribute())
                .expect("every attribute is enumerated");
            slot.1 += 1;
        }
        out
    }

    /// Counts of images per ground-truth class across the whole dataset.
    pub fn class_counts(&self) -> [usize; DamageLabel::COUNT] {
        let mut out = [0usize; DamageLabel::COUNT];
        for img in &self.images {
            out[img.truth().index()] += 1;
        }
        out
    }
}

fn generate_image(
    id: ImageId,
    truth: DamageLabel,
    attribute: ImageAttribute,
    drift_phase: f64,
    config: &DatasetConfig,
    rng: &mut StdRng,
) -> SyntheticImage {
    // What do the low-level features depict?
    let visual_label = match attribute {
        ImageAttribute::Plain | ImageAttribute::LowResolution => truth,
        ImageAttribute::Fake | ImageAttribute::CloseUp => DamageLabel::Severe,
        ImageAttribute::Implicit => DamageLabel::NoDamage,
    };

    // A fraction of ordinary images sits on an ambiguous severity boundary:
    // weak visual signal for AI, correlated confusion for humans.
    let ambiguous = attribute == ImageAttribute::Plain && rng.gen::<f64>() < config.ambiguity_rate;

    let (signal_scale, noise_scale) = match attribute {
        ImageAttribute::Plain if ambiguous => (config.ambiguity_attenuation, 1.2),
        ImageAttribute::Plain => (1.0, 1.0),
        // Deceptive images look *more* convincing than average, which is why
        // every committee member confidently agrees on the wrong answer.
        ImageAttribute::Fake | ImageAttribute::CloseUp | ImageAttribute::Implicit => {
            (config.deceptive_boost, 0.8)
        }
        ImageAttribute::LowResolution => (config.low_resolution_attenuation, 1.6),
    };

    // Family-drift scaling: the deep family fades while the handcrafted
    // family strengthens as the phase advances; the spatial family is
    // stable. At phase 0 (no drift / training split) all scales are the
    // baseline ones.
    let family_scale = |family: usize| -> f64 {
        if drift_phase <= 0.0 {
            return 1.0;
        }
        match family {
            0 => 1.0 - 0.85 * drift_phase,
            1 => 1.0 + 0.85 * drift_phase,
            _ => 1.0,
        }
    };

    let mut visual = vec![0.0f64; VISUAL_DIM];
    for family in 0..FAMILIES {
        for class in 0..DamageLabel::COUNT {
            for k in 0..BLOCK {
                let dim = family * DamageLabel::COUNT * BLOCK + class * BLOCK + k;
                let mean = if class == visual_label.index() {
                    config.signal * signal_scale * family_scale(family)
                } else {
                    0.0
                };
                visual[dim] = mean + gaussian(rng) * config.noise * noise_scale;
            }
        }
    }

    // Contextual evidence: class context scores then attribute cues.
    let mut contextual = vec![0.0f64; SyntheticImage::CONTEXTUAL_DIM];
    for (class, slot) in contextual.iter_mut().enumerate().take(DamageLabel::COUNT) {
        let mean = if class == truth.index() {
            config.context_fidelity
        } else {
            (1.0 - config.context_fidelity) / (DamageLabel::COUNT - 1) as f64
        };
        *slot = (mean + gaussian(rng) * config.context_noise).clamp(0.0, 1.0);
    }
    for (slot, attr) in ImageAttribute::ALL.iter().enumerate() {
        let mean = if *attr == attribute {
            config.context_fidelity
        } else {
            1.0 - config.context_fidelity
        };
        contextual[DamageLabel::COUNT + slot] =
            (mean + gaussian(rng) * config.context_noise).clamp(0.0, 1.0);
    }

    SyntheticImage::from_latents(
        id,
        truth,
        attribute,
        visual_label,
        ambiguous,
        visual,
        contextual,
    )
}

/// Standard normal sample via Box-Muller (keeps the workspace independent of
/// `rand_distr`, which is not in the offline dependency set). Shared with the
/// classifier and crowd simulators.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_produces_paper_shape() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        assert_eq!(ds.len(), 960);
        assert_eq!(ds.train().len(), 560);
        assert_eq!(ds.test().len(), 400);
    }

    #[test]
    fn classes_are_balanced() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let counts = ds.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), 960);
        for c in counts {
            assert_eq!(c, 320);
        }
    }

    #[test]
    fn split_is_roughly_stratified() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        for split in [ds.train(), ds.test()] {
            let mut counts = [0usize; DamageLabel::COUNT];
            for img in split {
                counts[img.truth().index()] += 1;
            }
            let max = *counts.iter().max().unwrap() as f64;
            let min = *counts.iter().min().unwrap() as f64;
            assert!(max - min <= 2.0, "split not balanced: {counts:?}");
        }
    }

    #[test]
    fn attribute_rates_are_respected() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let counts = ds.attribute_counts();
        let cfg = ds.config();
        let get = |a: ImageAttribute| counts.iter().find(|(x, _)| *x == a).unwrap().1;
        assert_eq!(
            get(ImageAttribute::Fake),
            (cfg.fake_rate() * 960.0).round() as usize
        );
        assert_eq!(
            get(ImageAttribute::CloseUp),
            (cfg.close_up_rate() * 960.0).round() as usize
        );
        assert_eq!(
            get(ImageAttribute::LowResolution),
            (cfg.low_resolution_rate() * 960.0).round() as usize
        );
        assert_eq!(
            get(ImageAttribute::Implicit),
            (cfg.implicit_rate() * 960.0).round() as usize
        );
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = Dataset::generate(&DatasetConfig::paper().with_seed(9));
        let b = Dataset::generate(&DatasetConfig::paper().with_seed(9));
        assert_eq!(a, b);
        let c = Dataset::generate(&DatasetConfig::paper().with_seed(10));
        assert_ne!(a, c);
    }

    #[test]
    fn fake_images_have_no_damage_truth_and_severe_visuals() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        for img in ds.images() {
            match img.attribute() {
                ImageAttribute::Fake | ImageAttribute::CloseUp => {
                    assert_eq!(img.truth(), DamageLabel::NoDamage);
                    assert_eq!(img.visual_label(), DamageLabel::Severe);
                    assert!(img.misleads_ai());
                }
                ImageAttribute::Implicit => {
                    assert_ne!(img.truth(), DamageLabel::NoDamage);
                    assert_eq!(img.visual_label(), DamageLabel::NoDamage);
                    assert!(img.misleads_ai());
                }
                ImageAttribute::LowResolution => {
                    assert_ne!(img.truth(), DamageLabel::NoDamage);
                    assert_eq!(img.visual_label(), img.truth());
                }
                ImageAttribute::Plain => {
                    assert_eq!(img.visual_label(), img.truth());
                }
            }
        }
    }

    #[test]
    fn plain_visual_evidence_peaks_in_true_class_block_on_average() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut per_class_signal = [0.0f64; DamageLabel::COUNT];
        let mut per_class_count = [0usize; DamageLabel::COUNT];
        for img in ds
            .images()
            .iter()
            .filter(|i| i.attribute() == ImageAttribute::Plain && !i.is_ambiguous())
        {
            let t = img.truth().index();
            // Average the dims of the true-class blocks across families.
            let mut own = 0.0;
            for family in 0..FAMILIES {
                for k in 0..BLOCK {
                    own +=
                        img.visual_evidence()[family * DamageLabel::COUNT * BLOCK + t * BLOCK + k];
                }
            }
            per_class_signal[t] += own / (FAMILIES * BLOCK) as f64;
            per_class_count[t] += 1;
        }
        for c in 0..DamageLabel::COUNT {
            let mean = per_class_signal[c] / per_class_count[c] as f64;
            assert!(mean > 0.7, "class {c} mean signal {mean} too weak");
        }
    }

    #[test]
    fn contextual_evidence_identifies_truth_and_attribute() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut correct_class = 0usize;
        let mut correct_attr = 0usize;
        for img in ds.images() {
            let ctx = img.contextual_evidence();
            let class_argmax = (0..DamageLabel::COUNT)
                .max_by(|&a, &b| ctx[a].partial_cmp(&ctx[b]).unwrap())
                .unwrap();
            if class_argmax == img.truth().index() {
                correct_class += 1;
            }
            let attr_argmax = (0..ImageAttribute::ALL.len())
                .max_by(|&a, &b| {
                    ctx[DamageLabel::COUNT + a]
                        .partial_cmp(&ctx[DamageLabel::COUNT + b])
                        .unwrap()
                })
                .unwrap();
            if ImageAttribute::ALL[attr_argmax] == img.attribute() {
                correct_attr += 1;
            }
        }
        let n = ds.len() as f64;
        assert!(
            correct_class as f64 / n > 0.95,
            "context must identify truth"
        );
        assert!(
            correct_attr as f64 / n > 0.95,
            "context must identify attribute"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty test set")]
    fn rejects_train_count_equal_to_total() {
        Dataset::generate(&DatasetConfig::paper().with_total(10).with_train_count(10));
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn rejects_excessive_rates() {
        Dataset::generate(
            &DatasetConfig::paper()
                .with_fake_rate(0.9)
                .with_implicit_rate(0.2),
        );
    }

    #[test]
    fn drift_fades_deep_family_and_boosts_handcrafted() {
        let plain_signal = |ds: &Dataset, family: usize, slice: &[SyntheticImage]| {
            let imgs: Vec<_> = slice
                .iter()
                .filter(|i| i.attribute() == ImageAttribute::Plain && !i.is_ambiguous())
                .collect();
            let _ = ds;
            imgs.iter()
                .map(|img| {
                    let t = img.truth().index();
                    (0..BLOCK)
                        .map(|k| {
                            img.visual_evidence()
                                [family * DamageLabel::COUNT * BLOCK + t * BLOCK + k]
                        })
                        .sum::<f64>()
                        / BLOCK as f64
                })
                .sum::<f64>()
                / imgs.len() as f64
        };
        let ds = Dataset::generate(&DatasetConfig::paper().with_family_drift(true));
        let early = &ds.test()[..100];
        let late = &ds.test()[300..];
        // Deep family (0) fades, handcrafted (1) strengthens, spatial (2)
        // stays put.
        assert!(plain_signal(&ds, 0, early) > plain_signal(&ds, 0, late) + 0.3);
        assert!(plain_signal(&ds, 1, late) > plain_signal(&ds, 1, early) + 0.3);
        assert!((plain_signal(&ds, 2, early) - plain_signal(&ds, 2, late)).abs() < 0.2);
        // Training split is generated at phase 0: same as a drift-free set.
        let baseline = Dataset::generate(&DatasetConfig::paper());
        assert_eq!(ds.train(), baseline.train());
    }

    #[test]
    fn drift_disabled_is_the_default() {
        assert!(!DatasetConfig::paper().family_drift());
        let a = Dataset::generate(&DatasetConfig::paper());
        let b = Dataset::generate(&DatasetConfig::paper().with_family_drift(false));
        assert_eq!(a, b);
    }

    #[test]
    fn image_lookup_round_trips() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        for img in ds.images() {
            assert_eq!(ds.image(img.id()).unwrap().id(), img.id());
        }
        assert!(ds.image(ImageId(99_999)).is_none());
    }
}
