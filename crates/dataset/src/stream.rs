//! Sensing cycles and temporal contexts (paper Definitions 1 and 10).

use crate::{Dataset, ImageId, SyntheticImage};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Temporal context of a sensing cycle. The paper's pilot study shows the
/// crowd's incentive-delay behaviour differs across these four contexts,
/// which is why the incentive bandit is *contextual*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TemporalContext {
    /// Morning (workers least active, most incentive-sensitive).
    Morning,
    /// Afternoon (moderately active).
    Afternoon,
    /// Evening (workers most active; delay mostly flat in incentive).
    Evening,
    /// Midnight (active night-owl population; flat mid-range delays).
    Midnight,
}

impl TemporalContext {
    /// Number of temporal contexts.
    pub const COUNT: usize = 4;

    /// All contexts in chronological order.
    pub const ALL: [TemporalContext; Self::COUNT] = [
        TemporalContext::Morning,
        TemporalContext::Afternoon,
        TemporalContext::Evening,
        TemporalContext::Midnight,
    ];

    /// Stable index in `0..COUNT`, used as the bandit context id.
    pub fn index(self) -> usize {
        match self {
            TemporalContext::Morning => 0,
            TemporalContext::Afternoon => 1,
            TemporalContext::Evening => 2,
            TemporalContext::Midnight => 3,
        }
    }

    /// Inverse of [`TemporalContext::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= TemporalContext::COUNT`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL
            .get(index)
            .copied()
            .unwrap_or_else(|| panic!("temporal context index {index} out of range"))
    }
}

impl fmt::Display for TemporalContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TemporalContext::Morning => "morning",
            TemporalContext::Afternoon => "afternoon",
            TemporalContext::Evening => "evening",
            TemporalContext::Midnight => "midnight",
        };
        f.write_str(name)
    }
}

/// One sensing cycle: a batch of newly "crawled" images plus the temporal
/// context it runs in.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensingCycle {
    /// Zero-based cycle index `t`.
    pub index: usize,
    /// Temporal context of this cycle.
    pub context: TemporalContext,
    /// Ids of the unseen images arriving in this cycle.
    pub image_ids: Vec<ImageId>,
}

impl SensingCycle {
    /// Resolves the cycle's image ids against a dataset.
    ///
    /// # Panics
    ///
    /// Panics if any id is unknown to `dataset` (cycles are only valid for
    /// the dataset they were derived from).
    pub fn images<'d>(&self, dataset: &'d Dataset) -> Vec<&'d SyntheticImage> {
        self.image_ids
            .iter()
            .map(|&id| {
                dataset
                    .image(id)
                    .unwrap_or_else(|| panic!("cycle references unknown image {id}"))
            })
            .collect()
    }
}

/// Streams a dataset's test split as a sequence of sensing cycles.
///
/// The paper's setup is 40 cycles of 10 images with 10 cycles per temporal
/// context; [`SensingCycleStream::paper`] reproduces that with a round-robin
/// diurnal rotation (see [`SensingCycleStream::new`]).
///
/// # Example
///
/// ```
/// use crowdlearn_dataset::{Dataset, DatasetConfig, SensingCycleStream};
///
/// let dataset = Dataset::generate(&DatasetConfig::paper());
/// let stream = SensingCycleStream::paper(&dataset);
/// assert_eq!(stream.cycles().len(), 40);
/// assert!(stream.cycles().iter().all(|c| c.image_ids.len() == 10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensingCycleStream {
    cycles: Vec<SensingCycle>,
}

impl SensingCycleStream {
    /// The paper's streaming setup: the whole test split in order, 10 images
    /// per cycle, 10 cycles per temporal context.
    ///
    /// # Panics
    ///
    /// Panics if the test split has fewer than 40 × 10 images.
    pub fn paper(dataset: &Dataset) -> Self {
        Self::new(dataset, 40, 10)
    }

    /// A custom streaming setup over the test split: `cycles` cycles of
    /// `images_per_cycle`, with contexts rotating round-robin through the
    /// day (morning, afternoon, evening, midnight, morning, ...) — the
    /// natural diurnal cadence of a continuously running DDA deployment,
    /// yielding the paper's "10 cycles for each temporal context" for a
    /// 40-cycle run.
    ///
    /// # Panics
    ///
    /// Panics if `cycles * images_per_cycle` exceeds the test split, or if
    /// either parameter is zero.
    pub fn new(dataset: &Dataset, cycles: usize, images_per_cycle: usize) -> Self {
        assert!(
            cycles > 0 && images_per_cycle > 0,
            "stream must be non-empty"
        );
        let test = dataset.test();
        assert!(
            cycles * images_per_cycle <= test.len(),
            "test split has {} images, need {}",
            test.len(),
            cycles * images_per_cycle
        );
        let cycles = (0..cycles)
            .map(|t| {
                let context = TemporalContext::from_index(t % TemporalContext::COUNT);
                let image_ids = test[t * images_per_cycle..(t + 1) * images_per_cycle]
                    .iter()
                    .map(|img| img.id())
                    .collect();
                SensingCycle {
                    index: t,
                    context,
                    image_ids,
                }
            })
            .collect();
        Self { cycles }
    }

    /// All cycles, in order.
    pub fn cycles(&self) -> &[SensingCycle] {
        &self.cycles
    }

    /// Iterates over the cycles.
    pub fn iter(&self) -> std::slice::Iter<'_, SensingCycle> {
        self.cycles.iter()
    }
}

impl<'a> IntoIterator for &'a SensingCycleStream {
    type Item = &'a SensingCycle;
    type IntoIter = std::slice::Iter<'a, SensingCycle>;

    fn into_iter(self) -> Self::IntoIter {
        self.cycles.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetConfig;

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::paper())
    }

    #[test]
    fn context_index_round_trips() {
        for ctx in TemporalContext::ALL {
            assert_eq!(TemporalContext::from_index(ctx.index()), ctx);
        }
    }

    #[test]
    fn paper_stream_has_40_cycles_of_10() {
        let ds = dataset();
        let stream = SensingCycleStream::paper(&ds);
        assert_eq!(stream.cycles().len(), 40);
        for c in stream.cycles() {
            assert_eq!(c.image_ids.len(), 10);
        }
    }

    #[test]
    fn paper_stream_has_10_cycles_per_context() {
        let ds = dataset();
        let stream = SensingCycleStream::paper(&ds);
        for ctx in TemporalContext::ALL {
            let n = stream.cycles().iter().filter(|c| c.context == ctx).count();
            assert_eq!(n, 10, "context {ctx} has {n} cycles");
        }
    }

    #[test]
    fn cycles_cover_disjoint_test_images() {
        let ds = dataset();
        let stream = SensingCycleStream::paper(&ds);
        let mut seen = std::collections::BTreeSet::new();
        for c in stream.cycles() {
            for id in &c.image_ids {
                assert!(seen.insert(*id), "image {id} appears in two cycles");
                // Must come from the test split.
                assert!(id.0 as usize >= ds.train().len());
            }
        }
        assert_eq!(seen.len(), 400);
    }

    #[test]
    fn cycle_image_resolution_works() {
        let ds = dataset();
        let stream = SensingCycleStream::paper(&ds);
        let imgs = stream.cycles()[0].images(&ds);
        assert_eq!(imgs.len(), 10);
    }

    #[test]
    #[should_panic(expected = "test split has")]
    fn oversized_stream_is_rejected() {
        let ds = dataset();
        SensingCycleStream::new(&ds, 100, 10);
    }

    #[test]
    fn iterator_yields_all_cycles() {
        let ds = dataset();
        let stream = SensingCycleStream::new(&ds, 8, 5);
        assert_eq!(stream.iter().count(), 8);
        assert_eq!((&stream).into_iter().count(), 8);
    }

    #[test]
    fn contexts_rotate_round_robin() {
        let ds = dataset();
        let stream = SensingCycleStream::new(&ds, 8, 5);
        let contexts: Vec<_> = stream.cycles().iter().map(|c| c.context).collect();
        assert_eq!(contexts[0], TemporalContext::Morning);
        assert_eq!(contexts[1], TemporalContext::Afternoon);
        assert_eq!(contexts[4], TemporalContext::Morning);
        assert_eq!(contexts[7], TemporalContext::Midnight);
    }
}
