//! Binary-codec impls for the dataset vocabulary types, used by the
//! runtime's checkpoint/resume snapshots (`serde::binary`).
//!
//! Enums travel as their stable `index()`; decoding an out-of-range index
//! is a [`DecodeError::Invalid`], never a panic.

use crate::{DamageLabel, ImageId, TemporalContext};
use serde::binary::{Decode, DecodeError, Encode, Reader};

impl Encode for ImageId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for ImageId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ImageId(u32::decode(r)?))
    }
}

impl Encode for DamageLabel {
    fn encode(&self, out: &mut Vec<u8>) {
        u8::try_from(self.index())
            .expect("invariant: DamageLabel::ALL has 3 variants, every index fits u8")
            .encode(out);
    }
}

impl Decode for DamageLabel {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Self::ALL
            .get(usize::from(u8::decode(r)?))
            .copied()
            .ok_or(DecodeError::Invalid)
    }
}

impl Encode for TemporalContext {
    fn encode(&self, out: &mut Vec<u8>) {
        u8::try_from(self.index())
            .expect("invariant: TemporalContext::ALL has 4 variants, every index fits u8")
            .encode(out);
    }
}

impl Decode for TemporalContext {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Self::ALL
            .get(usize::from(u8::decode(r)?))
            .copied()
            .ok_or(DecodeError::Invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_round_trips() {
        for label in DamageLabel::ALL {
            assert_eq!(DamageLabel::from_bytes(&label.to_bytes()), Ok(label));
        }
        for ctx in TemporalContext::ALL {
            assert_eq!(TemporalContext::from_bytes(&ctx.to_bytes()), Ok(ctx));
        }
        let id = ImageId(0xbeef);
        assert_eq!(ImageId::from_bytes(&id.to_bytes()), Ok(id));
    }

    #[test]
    fn enum_wire_bytes_are_the_stable_indices() {
        // Pins the wire format: each vocabulary enum travels as exactly one
        // byte holding its stable index (the former `as u8` cast, now a
        // checked conversion, must not have changed a single bit).
        let labels: Vec<u8> = DamageLabel::ALL.iter().flat_map(|l| l.to_bytes()).collect();
        assert_eq!(labels, vec![0, 1, 2]);
        let contexts: Vec<u8> = TemporalContext::ALL
            .iter()
            .flat_map(|c| c.to_bytes())
            .collect();
        assert_eq!(contexts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn out_of_range_enum_indices_are_invalid() {
        assert_eq!(DamageLabel::from_bytes(&[3]), Err(DecodeError::Invalid));
        assert_eq!(TemporalContext::from_bytes(&[4]), Err(DecodeError::Invalid));
    }
}
