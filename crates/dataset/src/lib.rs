//! Synthetic disaster-imagery dataset for the CrowdLearn reproduction.
//!
//! The paper evaluates on 960 labeled social-media images of the 2016 Ecuador
//! Earthquake (560 train / 400 test, balanced over three damage classes),
//! streamed over 40 sensing cycles of 10 images under four temporal contexts.
//! That dataset is not available, so this crate generates a statistical
//! equivalent that preserves the property CrowdLearn's design depends on: a
//! gap between what **low-level visual features** say about an image and what
//! its **high-level context** says.
//!
//! Every [`SyntheticImage`] carries:
//!
//! * a ground-truth [`DamageLabel`],
//! * a *visual-evidence* vector — the only thing the simulated AI classifiers
//!   can see (analogous to CNN features: color, layout, shapes),
//! * a *contextual-evidence* vector — what human annotators can additionally
//!   perceive (the "story behind the image"),
//! * an [`ImageAttribute`] marking the paper's Figure-1 failure modes: fake
//!   images, misleading close-ups, low-resolution shots, and implicit-damage
//!   scenes. For deceptive attributes the visual evidence points at a *wrong*
//!   class, which is exactly the failure AI-only pipelines cannot escape.
//!
//! # Example
//!
//! ```
//! use crowdlearn_dataset::{Dataset, DatasetConfig};
//!
//! let dataset = Dataset::generate(&DatasetConfig::paper().with_seed(7));
//! assert_eq!(dataset.len(), 960);
//! assert_eq!(dataset.train().len(), 560);
//! assert_eq!(dataset.test().len(), 400);
//! ```

//! Determinism: a simulation crate under `detlint` rules D1-D6 (DESIGN.md
//! "Determinism invariants") — BTree collections only, virtual time only,
//! seeded RNG only.
//!
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod evidence;
mod generator;
mod image;
mod label;
mod stream;

pub use evidence::{EvidenceMatrix, FAMILY_ROW, MEANS_ROW};
pub use generator::{gaussian, visual_layout, Dataset, DatasetConfig};
pub use image::{ImageAttribute, ImageId, LabeledImage, SyntheticImage};
pub use label::DamageLabel;
pub use stream::{SensingCycle, SensingCycleStream, TemporalContext};
