//! Contiguous structure-of-arrays layout of a batch's visual evidence.
//!
//! [`EvidenceMatrix`] is the batch-inference companion of
//! [`SyntheticImage::visual_evidence`]: it gathers the evidence vectors of a
//! whole sensing-cycle batch into family-major contiguous blocks, so a
//! classifier that weights feature families (the simulated DDA experts) can
//! compute every `dim(family, class, k)` block mean with sequential slice
//! sums instead of per-image strided gathers through [`visual_layout::dim`].
//!
//! The raw segments are a pure re-layout of the images' evidence, so summing
//! over them is bit-identical to indexing the per-image vectors in the same
//! arithmetic order. The one derived payload is [`EvidenceMatrix::block_means`]:
//! per-image `(family, class)` block means precomputed with the scalar path's
//! exact float-op order, shared by every committee member instead of being
//! recomputed per member.
//!
//! [`visual_layout::dim`]: crate::visual_layout::dim

use crate::generator::visual_layout::{BLOCK, FAMILIES, VISUAL_DIM};
use crate::{DamageLabel, ImageId, SyntheticImage};

/// Per-image, per-family row length: one `BLOCK`-dimensional sub-block per
/// damage class.
pub const FAMILY_ROW: usize = DamageLabel::COUNT * BLOCK;

/// Per-image row length of [`EvidenceMatrix::block_means`]: one mean per
/// `(family, class)` block, family-major.
pub const MEANS_ROW: usize = FAMILIES * DamageLabel::COUNT;

/// A batch of images' visual evidence in family-major SoA layout.
///
/// Layout: `FAMILIES` segments; segment `f` holds, for each image in batch
/// order, the image's contiguous family-`f` row (`FAMILY_ROW` values, classes
/// in index order, `BLOCK` dimensions per class). The image ids ride along so
/// deterministic per-image noise models can be evaluated without re-touching
/// the images.
///
/// # Example
///
/// ```
/// use crowdlearn_dataset::{Dataset, DatasetConfig, EvidenceMatrix};
/// use crowdlearn_dataset::visual_layout::{dim, FAMILIES};
///
/// let ds = Dataset::generate(&DatasetConfig::paper());
/// let batch = &ds.test()[..10];
/// let matrix = EvidenceMatrix::from_images(batch);
/// assert_eq!(matrix.len(), 10);
/// // Every value is the same bit pattern as the per-image accessor's.
/// for family in 0..FAMILIES {
///     let row = matrix.family_row(family, 3);
///     assert_eq!(row[0], batch[3].visual_evidence()[dim(family, 0, 0)]);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceMatrix {
    count: usize,
    ids: Vec<ImageId>,
    /// `FAMILIES` contiguous segments of `count * FAMILY_ROW` values each.
    data: Vec<f64>,
    /// Per-image `(family, class)` block means, image-major ([`MEANS_ROW`]
    /// values per image). Means are member-independent — every classifier
    /// weighting feature families consumes the same sums — so they are
    /// computed once here and shared across the whole committee, with the
    /// scalar path's exact float-op order (`k` ascending, one divide).
    means: Vec<f64>,
}

impl EvidenceMatrix {
    /// Gathers a batch from any sequence of image references (sensing cycles
    /// hand out scattered references into the dataset).
    ///
    /// # Panics
    ///
    /// Panics if any image's visual evidence is shorter than
    /// [`visual_layout::VISUAL_DIM`](crate::visual_layout::VISUAL_DIM) — the
    /// same out-of-range failure a strided per-image gather would hit.
    pub fn from_refs<'a, I>(images: I) -> Self
    where
        I: IntoIterator<Item = &'a SyntheticImage>,
        I::IntoIter: Clone,
    {
        let iter = images.into_iter();
        let ids: Vec<ImageId> = iter.clone().map(SyntheticImage::id).collect();
        let count = ids.len();
        let mut data = Vec::with_capacity(FAMILIES * count * FAMILY_ROW);
        for family in 0..FAMILIES {
            let offset = family * FAMILY_ROW;
            for image in iter.clone() {
                let visual = image.visual_evidence();
                assert!(
                    visual.len() >= VISUAL_DIM,
                    "visual evidence must cover the full layout"
                );
                data.extend_from_slice(&visual[offset..offset + FAMILY_ROW]);
            }
        }
        let mut means = Vec::with_capacity(count * MEANS_ROW);
        for image in iter {
            let visual = image.visual_evidence();
            for family in 0..FAMILIES {
                for class in 0..DamageLabel::COUNT {
                    let block = &visual[family * FAMILY_ROW + class * BLOCK..];
                    let mut mean = 0.0;
                    for v in &block[..BLOCK] {
                        mean += v;
                    }
                    means.push(mean / BLOCK as f64);
                }
            }
        }
        Self {
            count,
            ids,
            data,
            means,
        }
    }

    /// Gathers a batch from a contiguous image slice.
    ///
    /// # Panics
    ///
    /// See [`EvidenceMatrix::from_refs`].
    pub fn from_images(images: &[SyntheticImage]) -> Self {
        Self::from_refs(images.iter())
    }

    /// Number of images in the batch.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The batch's image ids, in batch order.
    pub fn ids(&self) -> &[ImageId] {
        &self.ids
    }

    /// The whole family segment: `len() * FAMILY_ROW` values, one contiguous
    /// `FAMILY_ROW` row per image in batch order.
    ///
    /// # Panics
    ///
    /// Panics if `family` is out of range.
    pub fn family(&self, family: usize) -> &[f64] {
        assert!(family < FAMILIES, "family out of range");
        let span = self.count * FAMILY_ROW;
        &self.data[family * span..(family + 1) * span]
    }

    /// One image's row within a family segment (`FAMILY_ROW` values).
    ///
    /// # Panics
    ///
    /// Panics if `family` or `image` is out of range.
    pub fn family_row(&self, family: usize, image: usize) -> &[f64] {
        assert!(image < self.count, "image out of range");
        &self.family(family)[image * FAMILY_ROW..(image + 1) * FAMILY_ROW]
    }

    /// Every image's `(family, class)` block means, image-major: one
    /// [`MEANS_ROW`] row per image in batch order, `row[family *
    /// DamageLabel::COUNT + class]` being the mean over the block's `BLOCK`
    /// dimensions in `k`-ascending order (the scalar path's accumulation
    /// order, so consuming these is bit-identical to re-summing per image).
    pub fn block_means(&self) -> &[f64] {
        &self.means
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visual_layout::dim;
    use crate::{Dataset, DatasetConfig};

    #[test]
    fn matrix_is_a_bit_exact_relayout_of_the_per_image_vectors() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let batch: Vec<&SyntheticImage> = ds.test().iter().take(7).collect();
        let matrix = EvidenceMatrix::from_refs(batch.iter().copied());
        assert_eq!(matrix.len(), 7);
        for (i, img) in batch.iter().enumerate() {
            assert_eq!(matrix.ids()[i], img.id());
            for family in 0..FAMILIES {
                let row = matrix.family_row(family, i);
                for class in 0..DamageLabel::COUNT {
                    for k in 0..BLOCK {
                        assert_eq!(
                            row[class * BLOCK + k].to_bits(),
                            img.visual_evidence()[dim(family, class, k)].to_bits(),
                            "image {i} family {family} class {class} k {k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn slice_and_ref_builders_agree() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let batch = &ds.test()[..5];
        assert_eq!(
            EvidenceMatrix::from_images(batch),
            EvidenceMatrix::from_refs(batch.iter())
        );
    }

    #[test]
    fn block_means_match_per_image_sums_bit_for_bit() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let batch = &ds.test()[..9];
        let matrix = EvidenceMatrix::from_images(batch);
        let means = matrix.block_means();
        assert_eq!(means.len(), batch.len() * MEANS_ROW);
        for (i, img) in batch.iter().enumerate() {
            let row = &means[i * MEANS_ROW..(i + 1) * MEANS_ROW];
            for family in 0..FAMILIES {
                for class in 0..DamageLabel::COUNT {
                    // The scalar predict path's op order: k ascending, then
                    // one divide.
                    let mut mean = 0.0;
                    for k in 0..BLOCK {
                        mean += img.visual_evidence()[dim(family, class, k)];
                    }
                    mean /= BLOCK as f64;
                    assert_eq!(
                        row[family * DamageLabel::COUNT + class].to_bits(),
                        mean.to_bits(),
                        "image {i} family {family} class {class}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let matrix = EvidenceMatrix::from_images(&[]);
        assert!(matrix.is_empty());
        assert_eq!(matrix.len(), 0);
        assert!(matrix.family(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "full layout")]
    fn short_evidence_is_rejected() {
        let img = SyntheticImage::from_latents(
            ImageId(0),
            DamageLabel::NoDamage,
            crate::ImageAttribute::Plain,
            DamageLabel::NoDamage,
            false,
            vec![0.0; VISUAL_DIM - 1],
            vec![0.0; SyntheticImage::CONTEXTUAL_DIM],
        );
        EvidenceMatrix::from_images(&[img]);
    }
}
