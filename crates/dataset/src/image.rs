//! Synthetic images with latent visual and contextual evidence.

use crate::DamageLabel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque identifier of a synthetic image within its [`Dataset`].
///
/// [`Dataset`]: crate::Dataset
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ImageId(pub u32);

impl fmt::Display for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "img-{:04}", self.0)
    }
}

/// Failure-mode attribute of an image, mirroring the four AI failure examples
/// of the paper's Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImageAttribute {
    /// An ordinary image: visual evidence agrees with the ground truth.
    Plain,
    /// A photoshopped/fake disaster image (Fig. 1a): visually screams severe
    /// damage, ground truth is no damage.
    Fake,
    /// A close-up of a minor feature, e.g. a crack filling the frame
    /// (Fig. 1b): visually severe, actually no damage.
    CloseUp,
    /// A low-resolution disaster scene (Fig. 1c): real damage, but the visual
    /// evidence is too weak for feature-based models.
    LowResolution,
    /// Damage implied by context, e.g. injured people evacuated (Fig. 1d):
    /// the damage is real but not visually present.
    Implicit,
}

impl ImageAttribute {
    /// All attributes in declaration order.
    pub const ALL: [ImageAttribute; 5] = [
        ImageAttribute::Plain,
        ImageAttribute::Fake,
        ImageAttribute::CloseUp,
        ImageAttribute::LowResolution,
        ImageAttribute::Implicit,
    ];

    /// Whether the attribute makes the visual evidence actively point at a
    /// wrong class (as opposed to merely weakening it).
    ///
    /// Fake and close-up images are *deceptive*: every feature-based model
    /// confidently reports "severe damage" for them, which is the failure the
    /// paper's epsilon-greedy exploration exists to catch. Implicit images
    /// are deceptive in the opposite direction (visually "no damage").
    pub fn is_deceptive(self) -> bool {
        matches!(
            self,
            ImageAttribute::Fake | ImageAttribute::CloseUp | ImageAttribute::Implicit
        )
    }

    /// Whether the attribute weakens the visual signal without flipping it.
    pub fn is_degraded(self) -> bool {
        matches!(self, ImageAttribute::LowResolution)
    }
}

impl fmt::Display for ImageAttribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ImageAttribute::Plain => "plain",
            ImageAttribute::Fake => "fake",
            ImageAttribute::CloseUp => "close-up",
            ImageAttribute::LowResolution => "low-resolution",
            ImageAttribute::Implicit => "implicit",
        };
        f.write_str(name)
    }
}

/// One synthetic social-media image.
///
/// The struct keeps the generative latents private and exposes them through
/// getters so downstream crates cannot accidentally mutate evidence vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticImage {
    id: ImageId,
    truth: DamageLabel,
    attribute: ImageAttribute,
    visual_label: DamageLabel,
    ambiguous: bool,
    visual_evidence: Vec<f64>,
    contextual_evidence: Vec<f64>,
}

impl SyntheticImage {
    /// Assembles an image from its generative latents. Intended for the
    /// dataset generator and for targeted failure-injection tests.
    ///
    /// # Panics
    ///
    /// Panics if `visual_evidence` is empty or if
    /// `contextual_evidence.len() != DamageLabel::COUNT + ImageAttribute::ALL.len()`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_latents(
        id: ImageId,
        truth: DamageLabel,
        attribute: ImageAttribute,
        visual_label: DamageLabel,
        ambiguous: bool,
        visual_evidence: Vec<f64>,
        contextual_evidence: Vec<f64>,
    ) -> Self {
        assert!(
            !visual_evidence.is_empty(),
            "visual evidence must be non-empty"
        );
        assert_eq!(
            contextual_evidence.len(),
            Self::CONTEXTUAL_DIM,
            "contextual evidence must have fixed dimension"
        );
        Self {
            id,
            truth,
            attribute,
            visual_label,
            ambiguous,
            visual_evidence,
            contextual_evidence,
        }
    }

    /// Dimension of the contextual-evidence vector: a per-class context
    /// score followed by per-attribute cues.
    pub const CONTEXTUAL_DIM: usize = DamageLabel::COUNT + ImageAttribute::ALL.len();

    /// The image identifier.
    pub fn id(&self) -> ImageId {
        self.id
    }

    /// Ground-truth damage label (the "golden label" of the paper's dataset).
    pub fn truth(&self) -> DamageLabel {
        self.truth
    }

    /// Failure-mode attribute.
    pub fn attribute(&self) -> ImageAttribute {
        self.attribute
    }

    /// The class that pure low-level visual features suggest. Equal to
    /// [`SyntheticImage::truth`] for plain images; different for deceptive
    /// ones.
    pub fn visual_label(&self) -> DamageLabel {
        self.visual_label
    }

    /// The low-level feature vector visible to AI classifiers.
    pub fn visual_evidence(&self) -> &[f64] {
        &self.visual_evidence
    }

    /// The high-level contextual cues visible to human annotators.
    ///
    /// Layout: `[class context scores (3)] ++ [attribute cues (5)]`.
    pub fn contextual_evidence(&self) -> &[f64] {
        &self.contextual_evidence
    }

    /// Whether the image sits on a genuinely ambiguous severity boundary.
    ///
    /// Ambiguous images are hard for *both* kinds of intelligence: their
    /// visual evidence is attenuated (AI classifiers become uncertain) and
    /// human annotators confuse adjacent severity levels in a correlated
    /// way. This coupling — an image that is hard is hard for everyone — is
    /// what real disaster imagery exhibits and what the Hybrid-Para
    /// baseline's complexity index trips over.
    pub fn is_ambiguous(&self) -> bool {
        self.ambiguous
    }

    /// Whether AI feature models are structurally misled on this image.
    pub fn misleads_ai(&self) -> bool {
        self.visual_label != self.truth
    }
}

/// An image paired with a (possibly crowd-derived) label, used for classifier
/// retraining.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledImage {
    /// The image being labeled.
    pub image: SyntheticImage,
    /// The label assigned to it (not necessarily the ground truth — CQC
    /// output is what MIC actually feeds back).
    pub label: DamageLabel,
}

impl LabeledImage {
    /// Pairs an image with a label.
    pub fn new(image: SyntheticImage, label: DamageLabel) -> Self {
        Self { image, label }
    }

    /// Pairs an image with its own ground truth (used to bootstrap training).
    pub fn ground_truth(image: SyntheticImage) -> Self {
        let label = image.truth();
        Self { image, label }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image(
        attribute: ImageAttribute,
        truth: DamageLabel,
        visual: DamageLabel,
    ) -> SyntheticImage {
        SyntheticImage::from_latents(
            ImageId(1),
            truth,
            attribute,
            visual,
            false,
            vec![0.0; 12],
            vec![0.0; SyntheticImage::CONTEXTUAL_DIM],
        )
    }

    #[test]
    fn deceptive_attributes_are_flagged() {
        assert!(ImageAttribute::Fake.is_deceptive());
        assert!(ImageAttribute::CloseUp.is_deceptive());
        assert!(ImageAttribute::Implicit.is_deceptive());
        assert!(!ImageAttribute::Plain.is_deceptive());
        assert!(!ImageAttribute::LowResolution.is_deceptive());
        assert!(ImageAttribute::LowResolution.is_degraded());
    }

    #[test]
    fn misleads_ai_iff_visual_differs_from_truth() {
        let fake = sample_image(
            ImageAttribute::Fake,
            DamageLabel::NoDamage,
            DamageLabel::Severe,
        );
        assert!(fake.misleads_ai());
        let plain = sample_image(
            ImageAttribute::Plain,
            DamageLabel::Moderate,
            DamageLabel::Moderate,
        );
        assert!(!plain.misleads_ai());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_visual_evidence() {
        SyntheticImage::from_latents(
            ImageId(0),
            DamageLabel::NoDamage,
            ImageAttribute::Plain,
            DamageLabel::NoDamage,
            false,
            vec![],
            vec![0.0; SyntheticImage::CONTEXTUAL_DIM],
        );
    }

    #[test]
    #[should_panic(expected = "fixed dimension")]
    fn rejects_wrong_contextual_dimension() {
        SyntheticImage::from_latents(
            ImageId(0),
            DamageLabel::NoDamage,
            ImageAttribute::Plain,
            DamageLabel::NoDamage,
            false,
            vec![0.0; 4],
            vec![0.0; 2],
        );
    }

    #[test]
    fn labeled_image_ground_truth_uses_truth() {
        let img = sample_image(
            ImageAttribute::Plain,
            DamageLabel::Severe,
            DamageLabel::Severe,
        );
        let labeled = LabeledImage::ground_truth(img);
        assert_eq!(labeled.label, DamageLabel::Severe);
    }

    #[test]
    fn image_id_display_is_stable() {
        assert_eq!(ImageId(7).to_string(), "img-0007");
    }
}
