//! The three damage-severity classes of the DDA application (paper Fig. 2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Damage severity reported for an image: the output alphabet of every DDA
/// scheme in the paper ("severe", "moderate" and "no damage").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DamageLabel {
    /// No visible disaster damage.
    NoDamage,
    /// Moderate damage (partial structural damage, debris).
    Moderate,
    /// Severe damage (collapsed structures, destroyed infrastructure).
    Severe,
}

impl DamageLabel {
    /// Number of damage classes.
    pub const COUNT: usize = 3;

    /// All labels in index order.
    pub const ALL: [DamageLabel; Self::COUNT] = [
        DamageLabel::NoDamage,
        DamageLabel::Moderate,
        DamageLabel::Severe,
    ];

    /// Stable class index in `0..COUNT`, used by confusion matrices and
    /// probability vectors.
    pub fn index(self) -> usize {
        match self {
            DamageLabel::NoDamage => 0,
            DamageLabel::Moderate => 1,
            DamageLabel::Severe => 2,
        }
    }

    /// Inverse of [`DamageLabel::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= DamageLabel::COUNT`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL
            .get(index)
            .copied()
            .unwrap_or_else(|| panic!("damage label index {index} out of range"))
    }

    /// Severity as an ordinal (0 = none, 2 = severe); convenient for
    /// complexity-index style merging in the Hybrid-Para baseline.
    pub fn severity(self) -> u8 {
        self.index() as u8
    }
}

impl fmt::Display for DamageLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DamageLabel::NoDamage => "no damage",
            DamageLabel::Moderate => "moderate damage",
            DamageLabel::Severe => "severe damage",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for label in DamageLabel::ALL {
            assert_eq!(DamageLabel::from_index(label.index()), label);
        }
    }

    #[test]
    fn indices_are_dense() {
        let mut seen = [false; DamageLabel::COUNT];
        for label in DamageLabel::ALL {
            seen[label.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_out_of_range() {
        DamageLabel::from_index(3);
    }

    #[test]
    fn display_is_lowercase_prose() {
        assert_eq!(DamageLabel::Severe.to_string(), "severe damage");
        assert_eq!(DamageLabel::NoDamage.to_string(), "no damage");
    }

    #[test]
    fn severity_is_ordered() {
        assert!(DamageLabel::NoDamage.severity() < DamageLabel::Moderate.severity());
        assert!(DamageLabel::Moderate.severity() < DamageLabel::Severe.severity());
    }
}
