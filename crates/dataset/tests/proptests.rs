//! Property-based tests on the dataset generator's invariants.

use crowdlearn_dataset::{
    visual_layout, DamageLabel, Dataset, DatasetConfig, ImageAttribute, SensingCycleStream,
    SyntheticImage,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any valid configuration generates exactly the requested number of
    /// images, with valid labels and evidence vectors of the fixed layout.
    #[test]
    fn generated_images_are_well_formed(
        seed in 0u64..10_000,
        total in 12usize..240,
        fake in 0.0f64..0.15,
        lowres in 0.0f64..0.15,
    ) {
        let train = total / 2;
        let ds = Dataset::generate(
            &DatasetConfig::paper()
                .with_seed(seed)
                .with_total(total)
                .with_train_count(train)
                .with_fake_rate(fake)
                .with_low_resolution_rate(lowres),
        );
        prop_assert_eq!(ds.len(), total);
        for img in ds.images() {
            prop_assert_eq!(img.visual_evidence().len(), visual_layout::VISUAL_DIM);
            prop_assert_eq!(
                img.contextual_evidence().len(),
                SyntheticImage::CONTEXTUAL_DIM
            );
            prop_assert!(img.visual_evidence().iter().all(|v| v.is_finite()));
            prop_assert!(img
                .contextual_evidence()
                .iter()
                .all(|v| (0.0..=1.0).contains(v)));
        }
    }

    /// Attribute/truth compatibility is a hard invariant of the generator.
    #[test]
    fn attributes_are_compatible_with_truths(seed in 0u64..10_000) {
        let ds = Dataset::generate(&DatasetConfig::paper().with_seed(seed).with_total(120).with_train_count(60));
        for img in ds.images() {
            match img.attribute() {
                ImageAttribute::Fake | ImageAttribute::CloseUp => {
                    prop_assert_eq!(img.truth(), DamageLabel::NoDamage);
                    prop_assert_eq!(img.visual_label(), DamageLabel::Severe);
                }
                ImageAttribute::Implicit => {
                    prop_assert_ne!(img.truth(), DamageLabel::NoDamage);
                    prop_assert_eq!(img.visual_label(), DamageLabel::NoDamage);
                }
                ImageAttribute::LowResolution => {
                    prop_assert_ne!(img.truth(), DamageLabel::NoDamage);
                    prop_assert_eq!(img.visual_label(), img.truth());
                }
                ImageAttribute::Plain => {
                    prop_assert_eq!(img.visual_label(), img.truth());
                }
            }
            // Ambiguity is a plain-image phenomenon.
            if img.is_ambiguous() {
                prop_assert_eq!(img.attribute(), ImageAttribute::Plain);
            }
        }
    }

    /// Same seed, same dataset; and the generator is a pure function of the
    /// configuration.
    #[test]
    fn generation_is_deterministic(seed in 0u64..10_000) {
        let cfg = DatasetConfig::paper().with_seed(seed).with_total(60).with_train_count(30);
        prop_assert_eq!(Dataset::generate(&cfg), Dataset::generate(&cfg));
    }

    /// Every stream partitions a prefix of the test split without overlap,
    /// regardless of its shape.
    #[test]
    fn streams_never_reuse_images(
        cycles in 1usize..12,
        per_cycle in 1usize..8,
    ) {
        let ds = Dataset::generate(
            &DatasetConfig::paper().with_total(240).with_train_count(120),
        );
        prop_assume!(cycles * per_cycle <= ds.test().len());
        let stream = SensingCycleStream::new(&ds, cycles, per_cycle);
        let mut seen = std::collections::BTreeSet::new();
        for c in stream.cycles() {
            prop_assert_eq!(c.image_ids.len(), per_cycle);
            for id in &c.image_ids {
                prop_assert!(seen.insert(*id));
            }
        }
    }
}
