//! EXP3 — the adversarial (non-stochastic) bandit, one learner per context.
//!
//! Included because the crowdsourcing platform is not guaranteed to be
//! stationary (worker populations shift within a day); EXP3's guarantees
//! hold against arbitrary payoff sequences, at the cost of slower
//! convergence than the stochastic policies on benign data.

use crate::config::{BanditConfig, BudgetLedger, CostedBandit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-context EXP3 with importance-weighted updates and budget pacing.
///
/// Arm probabilities mix the exponential-weight distribution with uniform
/// exploration `gamma`; observed payoffs are importance-weighted by the
/// selection probability, which keeps the estimator unbiased.
#[derive(Debug, Clone)]
pub struct Exp3 {
    config: BanditConfig,
    ledger: BudgetLedger,
    /// `weights[context][action]`, kept normalized per context.
    weights: Vec<Vec<f64>>,
    /// Probability used at the last selection, for the importance weight.
    last_probability: Vec<Vec<f64>>,
    gamma: f64,
    rounds_elapsed: u64,
    rng: StdRng,
}

impl Exp3 {
    /// Default exploration mix for short horizons.
    pub const DEFAULT_GAMMA: f64 = 0.1;

    /// Creates a learner with exploration mix `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is outside `(0, 1]`.
    pub fn new(config: BanditConfig, gamma: f64, seed: u64) -> Self {
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        let z = config.contexts();
        let k = config.actions();
        Self {
            ledger: BudgetLedger::new(config.total_budget()),
            weights: vec![vec![1.0 / k as f64; k]; z],
            last_probability: vec![vec![1.0 / k as f64; k]; z],
            gamma,
            rounds_elapsed: 0,
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    fn probabilities(&self, context: usize, pool: &[usize]) -> Vec<f64> {
        let k = pool.len() as f64;
        let total: f64 = pool.iter().map(|&a| self.weights[context][a]).sum();
        pool.iter()
            .map(|&a| {
                (1.0 - self.gamma) * self.weights[context][a] / total.max(f64::MIN_POSITIVE)
                    + self.gamma / k
            })
            .collect()
    }
}

impl CostedBandit for Exp3 {
    fn name(&self) -> &str {
        "EXP3"
    }

    fn select(&mut self, context: usize) -> Option<usize> {
        assert!(context < self.config.contexts(), "context out of range");
        self.rounds_elapsed += 1;
        let affordable = self
            .ledger
            .affordable(self.config.action_costs().iter().enumerate());
        if affordable.is_empty() {
            return None;
        }
        let remaining_rounds = self
            .config
            .horizon()
            .saturating_sub(self.rounds_elapsed - 1)
            .max(1);
        let pace = 2.0 * self.ledger.remaining() / remaining_rounds as f64;
        let paced: Vec<usize> = affordable
            .iter()
            .copied()
            .filter(|&a| self.config.cost(a) <= pace)
            .collect();
        let pool = if paced.is_empty() { affordable } else { paced };

        let probs = self.probabilities(context, &pool);
        let mut target = self.rng.gen::<f64>();
        let mut chosen = *pool.last().expect("pool non-empty");
        let mut chosen_p = *probs.last().expect("pool non-empty");
        for (&a, &p) in pool.iter().zip(&probs) {
            target -= p;
            if target <= 0.0 {
                chosen = a;
                chosen_p = p;
                break;
            }
        }
        self.last_probability[context][chosen] = chosen_p;
        let charged = self.ledger.try_charge(self.config.cost(chosen));
        debug_assert!(charged);
        Some(chosen)
    }

    fn observe(&mut self, context: usize, action: usize, payoff: f64) {
        assert!(context < self.config.contexts(), "context out of range");
        assert!(action < self.config.actions(), "action out of range");
        assert!(!payoff.is_nan(), "payoff must not be NaN");
        let k = self.config.actions() as f64;
        let p = self.last_probability[context][action].max(1e-6);
        let estimate = payoff.clamp(0.0, 1.0) / p;
        let weights = &mut self.weights[context];
        weights[action] *= (self.gamma * estimate / k).exp();
        // Renormalize to keep the weights from overflowing on long runs, and
        // floor them (a fixed-share-style anchor) so that a long-suppressed
        // arm can recover quickly when the environment shifts — the whole
        // point of using an adversarial learner.
        const FLOOR: f64 = 1e-4;
        let sum: f64 = weights.iter().sum();
        if sum > f64::MIN_POSITIVE {
            for w in weights.iter_mut() {
                *w = (*w / sum).max(FLOOR);
            }
            let sum: f64 = weights.iter().sum();
            for w in weights.iter_mut() {
                *w /= sum;
            }
        } else {
            weights.fill(1.0 / k);
        }
    }

    fn charge(&mut self, action: usize) -> bool {
        self.ledger.try_charge(self.config.cost(action))
    }

    fn clawback(&mut self, amount: f64) -> f64 {
        self.ledger.clawback(amount)
    }

    fn remaining_budget(&self) -> f64 {
        self.ledger.remaining()
    }

    fn config(&self) -> &BanditConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concentrates_on_the_best_arm() {
        let config = BanditConfig::new(1, vec![1.0, 1.0, 1.0], 1e6, 3000);
        let mut exp3 = Exp3::new(config, 0.1, 3);
        for _ in 0..3000 {
            let a = exp3.select(0).unwrap();
            exp3.observe(0, a, [0.2, 0.9, 0.4][a]);
        }
        assert!(
            exp3.weights[0][1] > 0.7,
            "weights {:?} must favor arm 1",
            exp3.weights[0]
        );
    }

    #[test]
    fn adapts_when_the_best_arm_flips() {
        // Non-stationary sequence: arm 0 is best for the first half, arm 1
        // afterwards. EXP3 must follow the flip.
        let config = BanditConfig::new(1, vec![1.0, 1.0], 1e6, 6000);
        let mut exp3 = Exp3::new(config, 0.15, 4);
        for round in 0..6000 {
            let a = exp3.select(0).unwrap();
            let best = usize::from(round >= 3000);
            exp3.observe(0, a, if a == best { 0.9 } else { 0.1 });
        }
        assert!(
            exp3.weights[0][1] > exp3.weights[0][0],
            "post-flip weights {:?}",
            exp3.weights[0]
        );
    }

    #[test]
    fn respects_budget() {
        let config = BanditConfig::new(1, vec![2.0, 3.0], 25.0, 100);
        let mut exp3 = Exp3::new(config, 0.2, 5);
        let mut spent = 0.0;
        while let Some(a) = exp3.select(0) {
            spent += [2.0, 3.0][a];
            exp3.observe(0, a, 0.5);
        }
        assert!(spent <= 25.0 + 1e-9);
    }

    #[test]
    fn weights_stay_normalized_under_extreme_payoffs() {
        let config = BanditConfig::new(1, vec![1.0, 1.0], 1e9, 100_000);
        let mut exp3 = Exp3::new(config, 0.3, 6);
        for _ in 0..20_000 {
            let a = exp3.select(0).unwrap();
            exp3.observe(0, a, 1.0);
        }
        let sum: f64 = exp3.weights[0].iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(exp3.weights[0].iter().all(|w| w.is_finite()));
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0, 1]")]
    fn rejects_bad_gamma() {
        Exp3::new(BanditConfig::new(1, vec![1.0], 1.0, 1), 0.0, 0);
    }
}
