//! Regret accounting against a known oracle — used by the bandit test
//! suites and the policy-comparison benches to quantify learning quality.

use serde::{Deserialize, Serialize};

/// Tracks cumulative (pseudo-)regret of a policy against the per-context
/// optimal expected payoff, which must be known (it is, in simulations).
///
/// # Example
///
/// ```
/// use crowdlearn_bandit::RegretTracker;
///
/// // One context, two arms with expected payoffs 0.3 and 0.8.
/// let mut tracker = RegretTracker::new(vec![vec![0.3, 0.8]]);
/// tracker.record(0, 0); // pulled the bad arm: regret 0.5
/// tracker.record(0, 1); // pulled the best arm: regret 0
/// assert!((tracker.cumulative_regret() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretTracker {
    /// `expected[context][action]` true mean payoffs.
    expected: Vec<Vec<f64>>,
    /// Best expected payoff per context.
    best: Vec<f64>,
    cumulative: f64,
    /// Per-round regret trace.
    trace: Vec<f64>,
}

impl RegretTracker {
    /// Creates a tracker from the true expected payoff table.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty, ragged, or contains NaN.
    pub fn new(expected: Vec<Vec<f64>>) -> Self {
        assert!(!expected.is_empty(), "need at least one context");
        let arity = expected[0].len();
        assert!(arity > 0, "need at least one action");
        for row in &expected {
            assert_eq!(row.len(), arity, "ragged payoff table");
            assert!(row.iter().all(|p| !p.is_nan()), "payoffs must not be NaN");
        }
        let best = expected
            .iter()
            .map(|row| row.iter().copied().fold(f64::NEG_INFINITY, f64::max))
            .collect();
        Self {
            expected,
            best,
            cumulative: 0.0,
            trace: Vec::new(),
        }
    }

    /// Records one pull and returns that round's instantaneous regret.
    ///
    /// # Panics
    ///
    /// Panics if `context` or `action` is out of range.
    pub fn record(&mut self, context: usize, action: usize) -> f64 {
        let row = &self.expected[context];
        let regret = self.best[context] - row[action];
        self.cumulative += regret;
        self.trace.push(regret);
        regret
    }

    /// Total pseudo-regret so far.
    pub fn cumulative_regret(&self) -> f64 {
        self.cumulative
    }

    /// Number of recorded pulls.
    pub fn rounds(&self) -> usize {
        self.trace.len()
    }

    /// Mean per-round regret; `0.0` before any pull.
    pub fn mean_regret(&self) -> f64 {
        if self.trace.is_empty() {
            0.0
        } else {
            self.cumulative / self.trace.len() as f64
        }
    }

    /// Mean regret over the last `window` pulls — the signal that a policy
    /// has converged (should approach 0 for stochastic learners).
    pub fn recent_mean_regret(&self, window: usize) -> f64 {
        if self.trace.is_empty() || window == 0 {
            return 0.0;
        }
        let tail = &self.trace[self.trace.len().saturating_sub(window)..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// The per-round regret trace.
    pub fn trace(&self) -> &[f64] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BanditConfig, CostedBandit, ThompsonSampling, UcbAlp};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn optimal_play_has_zero_regret() {
        let mut tracker = RegretTracker::new(vec![vec![0.1, 0.9], vec![0.8, 0.2]]);
        tracker.record(0, 1);
        tracker.record(1, 0);
        assert_eq!(tracker.cumulative_regret(), 0.0);
        assert_eq!(tracker.rounds(), 2);
    }

    #[test]
    fn worst_play_accumulates_the_gap() {
        let mut tracker = RegretTracker::new(vec![vec![0.1, 0.9]]);
        for _ in 0..10 {
            tracker.record(0, 0);
        }
        assert!((tracker.cumulative_regret() - 8.0).abs() < 1e-9);
        assert!((tracker.mean_regret() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn learners_regret_decays_over_time() {
        // Equal costs so the budget constraint is inactive; verify the
        // stochastic policies' recent regret shrinks well below their early
        // regret — the substance of a sublinear-regret guarantee at this
        // scale.
        let means = [[0.3, 0.7, 0.5], [0.6, 0.4, 0.8]];
        let mut rng = StdRng::seed_from_u64(77);
        let mk = || BanditConfig::new(2, vec![1.0; 3], 1e9, 4000);
        let policies: Vec<Box<dyn CostedBandit>> = vec![
            Box::new(UcbAlp::new(mk(), 3)),
            Box::new(ThompsonSampling::new(mk(), 4)),
        ];
        for mut policy in policies {
            let mut tracker = RegretTracker::new(means.iter().map(|row| row.to_vec()).collect());
            for round in 0..4000u64 {
                let ctx = (round % 2) as usize;
                let a = policy.select(ctx).expect("budget unlimited");
                tracker.record(ctx, a);
                let payoff = (means[ctx][a] + 0.1 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0);
                policy.observe(ctx, a, payoff);
            }
            let early = tracker.trace()[..500].iter().sum::<f64>() / 500.0;
            let late = tracker.recent_mean_regret(500);
            assert!(
                late < early * 0.5 + 1e-9,
                "{}: early {early:.4}, late {late:.4}",
                policy.name()
            );
            assert!(late < 0.05, "{}: late regret {late:.4}", policy.name());
        }
    }

    #[test]
    #[should_panic(expected = "ragged payoff table")]
    fn rejects_ragged_tables() {
        RegretTracker::new(vec![vec![0.1], vec![0.1, 0.2]]);
    }
}
