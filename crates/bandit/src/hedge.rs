//! Exponential-weights (Hedge) updates — the "classical exponential weight
//! update rule [Cesa-Bianchi & Lugosi]" that MIC uses for its dynamic expert
//! weights (paper Section IV-D).

use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};

/// A Hedge learner over a fixed set of experts.
///
/// Weights start uniform; after each round every expert reports a loss in
/// `[0, 1]` and its weight is multiplied by `exp(-eta * loss)`, then the
/// vector is renormalized. The normalized weights are exactly the expert
/// weights `w_m^t` of the paper's committee vote (Eq. 2).
///
/// # Example
///
/// ```
/// use crowdlearn_bandit::ExpWeights;
///
/// let mut hedge = ExpWeights::new(3, 0.5);
/// hedge.update(&[0.9, 0.1, 0.5]); // expert 1 was the most accurate
/// let w = hedge.weights();
/// assert!(w[1] > w[0] && w[1] > w[2]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpWeights {
    weights: Vec<f64>,
    eta: f64,
    rounds: u64,
}

impl ExpWeights {
    /// Creates a learner over `experts` experts with learning rate `eta`.
    ///
    /// # Panics
    ///
    /// Panics if `experts == 0` or `eta <= 0`.
    pub fn new(experts: usize, eta: f64) -> Self {
        assert!(experts > 0, "need at least one expert");
        assert!(eta > 0.0 && eta.is_finite(), "eta must be positive");
        Self {
            weights: vec![1.0 / experts as f64; experts],
            eta,
            rounds: 0,
        }
    }

    /// Number of experts.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether there are no experts (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The current normalized weights (sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Rounds of feedback incorporated so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Applies one round of losses (each in `[0, 1]`; values are clamped).
    ///
    /// # Panics
    ///
    /// Panics if `losses.len() != self.len()` or any loss is NaN.
    pub fn update(&mut self, losses: &[f64]) {
        assert_eq!(losses.len(), self.weights.len(), "one loss per expert");
        assert!(losses.iter().all(|l| !l.is_nan()), "losses must not be NaN");
        for (w, &loss) in self.weights.iter_mut().zip(losses) {
            *w *= (-self.eta * loss.clamp(0.0, 1.0)).exp();
        }
        let sum: f64 = self.weights.iter().sum();
        if sum <= f64::MIN_POSITIVE {
            // All weights underflowed (pathological loss streak): reset to
            // uniform rather than dividing by zero.
            let n = self.weights.len() as f64;
            self.weights.fill(1.0 / n);
        } else {
            for w in &mut self.weights {
                *w /= sum;
            }
        }
        self.rounds += 1;
    }
}

// Snapshot codec: the normalized weight vector travels bit-exactly (no
// re-normalization on decode); the invariant is only checked.
impl Encode for ExpWeights {
    fn encode(&self, out: &mut Vec<u8>) {
        self.weights.encode(out);
        self.eta.encode(out);
        self.rounds.encode(out);
    }
}

impl Decode for ExpWeights {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let weights = Vec::<f64>::decode(r)?;
        let eta = f64::decode(r)?;
        let rounds = u64::decode(r)?;
        let valid = !weights.is_empty()
            && weights.iter().all(|w| w.is_finite() && *w >= 0.0)
            && (weights.iter().sum::<f64>() - 1.0).abs() < 1e-6
            && eta.is_finite()
            && eta > 0.0;
        if !valid {
            return Err(DecodeError::Invalid);
        }
        Ok(Self {
            weights,
            eta,
            rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uniform() {
        let h = ExpWeights::new(4, 0.5);
        for &w in h.weights() {
            assert!((w - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_stay_normalized() {
        let mut h = ExpWeights::new(3, 0.8);
        for round in 0..50 {
            let losses = [0.1 * (round % 3) as f64, 0.5, 0.9];
            h.update(&losses);
            let sum: f64 = h.weights().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "round {round}: sum {sum}");
            assert!(h.weights().iter().all(|w| *w >= 0.0));
        }
    }

    #[test]
    fn consistently_better_expert_dominates() {
        let mut h = ExpWeights::new(2, 0.5);
        for _ in 0..30 {
            h.update(&[0.2, 0.8]);
        }
        assert!(h.weights()[0] > 0.95, "weights {:?}", h.weights());
    }

    #[test]
    fn equal_losses_leave_weights_unchanged() {
        let mut h = ExpWeights::new(3, 0.5);
        h.update(&[0.4, 0.4, 0.4]);
        for &w in h.weights() {
            assert!((w - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn losses_are_clamped() {
        let mut h = ExpWeights::new(2, 0.5);
        h.update(&[-5.0, 7.0]); // clamp to [0, 1]
        let w01 = h.weights().to_vec();
        let mut g = ExpWeights::new(2, 0.5);
        g.update(&[0.0, 1.0]);
        assert_eq!(w01, g.weights());
    }

    #[test]
    fn survives_long_extreme_loss_streaks() {
        let mut h = ExpWeights::new(2, 10.0);
        for _ in 0..10_000 {
            h.update(&[1.0, 1.0]);
        }
        let sum: f64 = h.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(h.weights().iter().all(|w| w.is_finite()));
    }

    #[test]
    #[should_panic(expected = "one loss per expert")]
    fn rejects_wrong_arity() {
        ExpWeights::new(2, 0.5).update(&[0.1]);
    }
}
