//! Gaussian Thompson sampling — a posterior-sampling alternative to the
//! UCB-ALP policy, used by the incentive-policy ablations.

use crate::config::{BanditConfig, BudgetLedger, CostedBandit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-(context, action) Gaussian Thompson sampling with budget pacing.
///
/// Each arm keeps a running mean and count; at selection time a payoff is
/// sampled from `N(mean, sigma0 / sqrt(n + 1))` for every arm the pacing
/// allows (cost at most twice the per-round budget share), and the largest
/// sample wins. Unexplored arms have a prior mean of 0.5 over the `[0, 1]`
/// payoff scale, so everything gets tried early.
#[derive(Debug, Clone)]
pub struct ThompsonSampling {
    config: BanditConfig,
    ledger: BudgetLedger,
    counts: Vec<Vec<u64>>,
    means: Vec<Vec<f64>>,
    rounds_elapsed: u64,
    sigma0: f64,
    rng: StdRng,
}

impl ThompsonSampling {
    /// Prior/posterior scale suited to `[0, 1]` payoffs.
    pub const DEFAULT_SIGMA: f64 = 0.25;

    /// Creates a sampler with the default posterior scale.
    pub fn new(config: BanditConfig, seed: u64) -> Self {
        let z = config.contexts();
        let k = config.actions();
        Self {
            ledger: BudgetLedger::new(config.total_budget()),
            counts: vec![vec![0; k]; z],
            means: vec![vec![0.5; k]; z],
            rounds_elapsed: 0,
            sigma0: Self::DEFAULT_SIGMA,
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// Overrides the posterior scale.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not positive.
    pub fn with_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        self.sigma0 = sigma;
        self
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl CostedBandit for ThompsonSampling {
    fn name(&self) -> &str {
        "thompson"
    }

    fn select(&mut self, context: usize) -> Option<usize> {
        assert!(context < self.config.contexts(), "context out of range");
        self.rounds_elapsed += 1;
        let affordable = self
            .ledger
            .affordable(self.config.action_costs().iter().enumerate());
        if affordable.is_empty() {
            return None;
        }
        let remaining_rounds = self
            .config
            .horizon()
            .saturating_sub(self.rounds_elapsed - 1)
            .max(1);
        let pace = 2.0 * self.ledger.remaining() / remaining_rounds as f64;
        let paced: Vec<usize> = affordable
            .iter()
            .copied()
            .filter(|&a| self.config.cost(a) <= pace)
            .collect();
        let pool = if paced.is_empty() { affordable } else { paced };

        let mut best = pool[0];
        let mut best_sample = f64::NEG_INFINITY;
        for &a in &pool {
            let n = self.counts[context][a] as f64;
            let noise = self.gaussian();
            let sample = self.means[context][a] + noise * self.sigma0 / (n + 1.0).sqrt();
            if sample > best_sample {
                best_sample = sample;
                best = a;
            }
        }
        let charged = self.ledger.try_charge(self.config.cost(best));
        debug_assert!(charged, "pool members are affordable");
        Some(best)
    }

    fn observe(&mut self, context: usize, action: usize, payoff: f64) {
        assert!(context < self.config.contexts(), "context out of range");
        assert!(action < self.config.actions(), "action out of range");
        assert!(!payoff.is_nan(), "payoff must not be NaN");
        let n = &mut self.counts[context][action];
        *n += 1;
        let mean = &mut self.means[context][action];
        *mean += (payoff - *mean) / *n as f64;
    }

    fn charge(&mut self, action: usize) -> bool {
        self.ledger.try_charge(self.config.cost(action))
    }

    fn clawback(&mut self, amount: f64) -> f64 {
        self.ledger.clawback(amount)
    }

    fn remaining_budget(&self) -> f64 {
        self.ledger.remaining()
    }

    fn config(&self) -> &BanditConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_the_best_arm() {
        let config = BanditConfig::new(1, vec![1.0, 1.0, 1.0], 10_000.0, 500);
        let mut ts = ThompsonSampling::new(config, 8);
        let mut picks = Vec::new();
        for _ in 0..500 {
            let a = ts.select(0).expect("budget ample");
            ts.observe(0, a, [0.3, 0.8, 0.5][a]);
            picks.push(a);
        }
        let late_best = picks.iter().skip(300).filter(|&&a| a == 1).count() as f64 / 200.0;
        assert!(late_best > 0.85, "best-arm rate {late_best}");
    }

    #[test]
    fn respects_the_budget() {
        let config = BanditConfig::new(1, vec![1.0, 4.0], 30.0, 100);
        let mut ts = ThompsonSampling::new(config, 1);
        let mut spent = 0.0;
        while let Some(a) = ts.select(0) {
            spent += [1.0, 4.0][a];
            ts.observe(0, a, 0.5);
        }
        assert!(spent <= 30.0 + 1e-9);
        assert!(ts.remaining_budget() < 1.0);
    }

    #[test]
    fn contexts_learn_independently() {
        let config = BanditConfig::new(2, vec![1.0, 1.0], 10_000.0, 600);
        let mut ts = ThompsonSampling::new(config, 5);
        for r in 0..600 {
            let ctx = r % 2;
            if let Some(a) = ts.select(ctx) {
                // Context 0 prefers arm 0, context 1 prefers arm 1.
                let payoff = if (ctx == 0) == (a == 0) { 0.9 } else { 0.2 };
                ts.observe(ctx, a, payoff);
            }
        }
        assert!(ts.means[0][0] > ts.means[0][1]);
        assert!(ts.means[1][1] > ts.means[1][0]);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn rejects_bad_sigma() {
        let config = BanditConfig::new(1, vec![1.0], 1.0, 1);
        let _ = ThompsonSampling::new(config, 0).with_sigma(0.0);
    }
}
