//! Serializable bandit-policy state for runtime checkpoints.
//!
//! Policies are held as `Box<dyn CostedBandit>` trait objects, which cannot
//! be serialized directly. Instead, [`CostedBandit::save_state`] extracts a
//! [`PolicyState`] — a closed enum of every checkpointable policy's full
//! live state (configuration, budget ledger, statistics, RNG words) — and
//! [`PolicyState::into_bandit`] rebuilds the concrete policy. Policies
//! without a variant here (e.g. the ablation-only Thompson/Exp3) return
//! `None` from `save_state`, which snapshot callers surface as an explicit
//! error rather than a panic.

use crate::config::BanditConfig;
use crate::{CostedBandit, EpsilonGreedy, FixedPolicy, RandomPolicy, UcbAlp};
use serde::binary::{Decode, DecodeError, Encode, Reader};

/// Full live state of a [`UcbAlp`] policy.
#[derive(Debug, Clone, PartialEq)]
pub struct UcbAlpState {
    pub(crate) config: BanditConfig,
    pub(crate) remaining_budget: f64,
    pub(crate) counts: Vec<Vec<u64>>,
    pub(crate) means: Vec<Vec<f64>>,
    pub(crate) context_counts: Vec<u64>,
    pub(crate) rounds_elapsed: u64,
    pub(crate) exploration_scale: f64,
    pub(crate) rng: [u64; 4],
}

/// Full live state of an [`EpsilonGreedy`] policy.
#[derive(Debug, Clone, PartialEq)]
pub struct EpsilonGreedyState {
    pub(crate) config: BanditConfig,
    pub(crate) remaining_budget: f64,
    pub(crate) epsilon: f64,
    pub(crate) counts: Vec<Vec<u64>>,
    pub(crate) means: Vec<Vec<f64>>,
    pub(crate) rounds_elapsed: u64,
    pub(crate) rng: [u64; 4],
}

/// Full live state of a [`FixedPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct FixedState {
    pub(crate) config: BanditConfig,
    pub(crate) remaining_budget: f64,
    pub(crate) action: usize,
}

/// Full live state of a [`RandomPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomState {
    pub(crate) config: BanditConfig,
    pub(crate) remaining_budget: f64,
    pub(crate) rng: [u64; 4],
}

/// The serialized form of a checkpointable [`CostedBandit`] policy.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyState {
    /// A [`UcbAlp`] policy.
    UcbAlp(UcbAlpState),
    /// An [`EpsilonGreedy`] policy.
    EpsilonGreedy(EpsilonGreedyState),
    /// A [`FixedPolicy`].
    Fixed(FixedState),
    /// A [`RandomPolicy`].
    Random(RandomState),
}

impl PolicyState {
    /// The saved policy's configuration — restore paths check its
    /// action/context arity before rebuilding dependent structures.
    pub fn config(&self) -> &BanditConfig {
        match self {
            PolicyState::UcbAlp(s) => &s.config,
            PolicyState::EpsilonGreedy(s) => &s.config,
            PolicyState::Fixed(s) => &s.config,
            PolicyState::Random(s) => &s.config,
        }
    }

    /// Rebuilds the concrete policy this state was captured from.
    pub fn into_bandit(self) -> Box<dyn CostedBandit> {
        match self {
            PolicyState::UcbAlp(s) => Box::new(UcbAlp::from_state(s)),
            PolicyState::EpsilonGreedy(s) => Box::new(EpsilonGreedy::from_state(s)),
            PolicyState::Fixed(s) => Box::new(FixedPolicy::from_state(s)),
            PolicyState::Random(s) => Box::new(RandomPolicy::from_state(s)),
        }
    }
}

/// Per-(context, action) tables must match the configuration's dimensions,
/// or indexing in `select`/`observe` would panic after resume.
fn tables_match(config: &BanditConfig, counts: &[Vec<u64>], means: &[Vec<f64>]) -> bool {
    counts.len() == config.contexts()
        && means.len() == config.contexts()
        && counts.iter().all(|row| row.len() == config.actions())
        && means
            .iter()
            .all(|row| row.len() == config.actions() && row.iter().all(|m| m.is_finite()))
}

fn budget_ok(remaining: f64) -> bool {
    remaining.is_finite() && remaining >= 0.0
}

impl Encode for PolicyState {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            PolicyState::UcbAlp(s) => {
                0u8.encode(out);
                s.config.encode(out);
                s.remaining_budget.encode(out);
                s.counts.encode(out);
                s.means.encode(out);
                s.context_counts.encode(out);
                s.rounds_elapsed.encode(out);
                s.exploration_scale.encode(out);
                s.rng.encode(out);
            }
            PolicyState::EpsilonGreedy(s) => {
                1u8.encode(out);
                s.config.encode(out);
                s.remaining_budget.encode(out);
                s.epsilon.encode(out);
                s.counts.encode(out);
                s.means.encode(out);
                s.rounds_elapsed.encode(out);
                s.rng.encode(out);
            }
            PolicyState::Fixed(s) => {
                2u8.encode(out);
                s.config.encode(out);
                s.remaining_budget.encode(out);
                s.action.encode(out);
            }
            PolicyState::Random(s) => {
                3u8.encode(out);
                s.config.encode(out);
                s.remaining_budget.encode(out);
                s.rng.encode(out);
            }
        }
    }
}

impl Decode for PolicyState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => {
                let s = UcbAlpState {
                    config: BanditConfig::decode(r)?,
                    remaining_budget: f64::decode(r)?,
                    counts: Vec::<Vec<u64>>::decode(r)?,
                    means: Vec::<Vec<f64>>::decode(r)?,
                    context_counts: Vec::<u64>::decode(r)?,
                    rounds_elapsed: u64::decode(r)?,
                    exploration_scale: f64::decode(r)?,
                    rng: <[u64; 4]>::decode(r)?,
                };
                let valid = budget_ok(s.remaining_budget)
                    && tables_match(&s.config, &s.counts, &s.means)
                    && s.context_counts.len() == s.config.contexts()
                    && s.exploration_scale.is_finite()
                    && s.exploration_scale >= 0.0;
                if !valid {
                    return Err(DecodeError::Invalid);
                }
                Ok(PolicyState::UcbAlp(s))
            }
            1 => {
                let s = EpsilonGreedyState {
                    config: BanditConfig::decode(r)?,
                    remaining_budget: f64::decode(r)?,
                    epsilon: f64::decode(r)?,
                    counts: Vec::<Vec<u64>>::decode(r)?,
                    means: Vec::<Vec<f64>>::decode(r)?,
                    rounds_elapsed: u64::decode(r)?,
                    rng: <[u64; 4]>::decode(r)?,
                };
                let valid = budget_ok(s.remaining_budget)
                    && tables_match(&s.config, &s.counts, &s.means)
                    && (0.0..=1.0).contains(&s.epsilon);
                if !valid {
                    return Err(DecodeError::Invalid);
                }
                Ok(PolicyState::EpsilonGreedy(s))
            }
            2 => {
                let s = FixedState {
                    config: BanditConfig::decode(r)?,
                    remaining_budget: f64::decode(r)?,
                    action: usize::decode(r)?,
                };
                if !budget_ok(s.remaining_budget) || s.action >= s.config.actions() {
                    return Err(DecodeError::Invalid);
                }
                Ok(PolicyState::Fixed(s))
            }
            3 => {
                let s = RandomState {
                    config: BanditConfig::decode(r)?,
                    remaining_budget: f64::decode(r)?,
                    rng: <[u64; 4]>::decode(r)?,
                };
                if !budget_ok(s.remaining_budget) {
                    return Err(DecodeError::Invalid);
                }
                Ok(PolicyState::Random(s))
            }
            _ => Err(DecodeError::Invalid),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BanditConfig {
        BanditConfig::new(2, vec![1.0, 2.0, 4.0], 300.0, 120)
            .with_context_distribution(vec![0.5, 0.5])
    }

    /// Drives a policy `rounds` times, alternating contexts, with a fixed
    /// payoff schedule; returns the picks.
    fn drive(bandit: &mut dyn CostedBandit, rounds: u64) -> Vec<Option<usize>> {
        (0..rounds)
            .map(|r| {
                let ctx = (r % 2) as usize;
                let pick = bandit.select(ctx);
                if let Some(a) = pick {
                    bandit.observe(ctx, a, [0.2, 0.6, 0.9][a]);
                }
                pick
            })
            .collect()
    }

    fn assert_resume_is_transparent(mut live: Box<dyn CostedBandit>) {
        drive(live.as_mut(), 37);
        let state = live.save_state().expect("policy is checkpointable");
        let bytes = state.to_bytes();
        let restored = PolicyState::from_bytes(&bytes).expect("round trip");
        assert_eq!(restored, state);
        let mut resumed = restored.into_bandit();
        assert_eq!(drive(live.as_mut(), 40), drive(resumed.as_mut(), 40));
        assert_eq!(live.remaining_budget(), resumed.remaining_budget());
    }

    #[test]
    fn ucb_alp_resumes_byte_identically() {
        assert_resume_is_transparent(Box::new(UcbAlp::new(config(), 9)));
    }

    #[test]
    fn epsilon_greedy_resumes_byte_identically() {
        assert_resume_is_transparent(Box::new(EpsilonGreedy::new(config(), 0.2, 9)));
    }

    #[test]
    fn fixed_resumes_byte_identically() {
        assert_resume_is_transparent(Box::new(FixedPolicy::new(config(), 1)));
    }

    #[test]
    fn random_resumes_byte_identically() {
        assert_resume_is_transparent(Box::new(RandomPolicy::new(config(), 9)));
    }

    #[test]
    fn unknown_tag_is_invalid() {
        assert!(matches!(
            PolicyState::from_bytes(&[9]),
            Err(DecodeError::Invalid)
        ));
    }

    #[test]
    fn mismatched_tables_are_invalid() {
        let state = PolicyState::EpsilonGreedy(EpsilonGreedyState {
            config: config(),
            remaining_budget: 10.0,
            epsilon: 0.1,
            counts: vec![vec![0; 2]; 2], // 2 actions, config has 3
            means: vec![vec![0.0; 2]; 2],
            rounds_elapsed: 0,
            rng: [1, 2, 3, 4],
        });
        assert!(matches!(
            PolicyState::from_bytes(&state.to_bytes()),
            Err(DecodeError::Invalid)
        ));
    }

    #[test]
    fn non_checkpointable_policies_save_none() {
        let thompson = crate::ThompsonSampling::new(config(), 1);
        assert!(thompson.save_state().is_none());
    }
}
