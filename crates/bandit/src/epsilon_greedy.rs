//! Budget-aware contextual ε-greedy — a simpler CCMB policy used in
//! ablations against [`crate::UcbAlp`].

use crate::config::{BanditConfig, BudgetLedger, CostedBandit};
use crate::state::{EpsilonGreedyState, PolicyState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Contextual ε-greedy with budget pacing.
///
/// With probability ε an affordable action is chosen uniformly at random;
/// otherwise the empirically best *affordable* action whose cost does not
/// exceed the per-round budget pace (`remaining budget / remaining rounds`,
/// relaxed by 2x so the policy is not overly conservative early on).
///
/// # Example
///
/// ```
/// use crowdlearn_bandit::{BanditConfig, CostedBandit, EpsilonGreedy};
///
/// let mut eg = EpsilonGreedy::new(BanditConfig::new(1, vec![1.0, 2.0], 10.0, 10), 0.1, 5);
/// let a = eg.select(0).expect("affordable");
/// eg.observe(0, a, 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    config: BanditConfig,
    epsilon: f64,
    ledger: BudgetLedger,
    counts: Vec<Vec<u64>>,
    means: Vec<Vec<f64>>,
    rounds_elapsed: u64,
    rng: StdRng,
}

impl EpsilonGreedy {
    /// Creates a policy with exploration rate `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `[0, 1]`.
    pub fn new(config: BanditConfig, epsilon: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        let z = config.contexts();
        let k = config.actions();
        Self {
            ledger: BudgetLedger::new(config.total_budget()),
            epsilon,
            counts: vec![vec![0; k]; z],
            means: vec![vec![0.0; k]; z],
            rounds_elapsed: 0,
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// Rebuilds a policy from a decoded snapshot state (validated at decode
    /// time); the restore path of [`PolicyState::into_bandit`].
    pub(crate) fn from_state(s: EpsilonGreedyState) -> Self {
        Self {
            ledger: BudgetLedger::new(s.remaining_budget),
            epsilon: s.epsilon,
            counts: s.counts,
            means: s.means,
            rounds_elapsed: s.rounds_elapsed,
            rng: StdRng::from_state(s.rng),
            config: s.config,
        }
    }
}

impl CostedBandit for EpsilonGreedy {
    fn name(&self) -> &str {
        "epsilon-greedy"
    }

    fn select(&mut self, context: usize) -> Option<usize> {
        assert!(context < self.config.contexts(), "context out of range");
        self.rounds_elapsed += 1;
        let affordable = self
            .ledger
            .affordable(self.config.action_costs().iter().enumerate());
        if affordable.is_empty() {
            return None;
        }

        let remaining_rounds = self
            .config
            .horizon()
            .saturating_sub(self.rounds_elapsed - 1)
            .max(1);
        let pace = 2.0 * self.ledger.remaining() / remaining_rounds as f64;
        let paced: Vec<usize> = affordable
            .iter()
            .copied()
            .filter(|&a| self.config.cost(a) <= pace)
            .collect();
        let pool = if paced.is_empty() {
            &affordable
        } else {
            &paced
        };

        let action = if self.rng.gen::<f64>() < self.epsilon {
            pool[self.rng.gen_range(0..pool.len())]
        } else {
            // Prefer untried actions, then the best empirical mean.
            *pool
                .iter()
                .max_by(|&&a, &&b| {
                    let score = |x: usize| {
                        if self.counts[context][x] == 0 {
                            f64::INFINITY
                        } else {
                            self.means[context][x]
                        }
                    };
                    score(a).partial_cmp(&score(b)).expect("no NaN means")
                })
                .expect("pool checked non-empty")
        };
        let charged = self.ledger.try_charge(self.config.cost(action));
        debug_assert!(charged, "selected action must be affordable");
        Some(action)
    }

    fn observe(&mut self, context: usize, action: usize, payoff: f64) {
        assert!(context < self.config.contexts(), "context out of range");
        assert!(action < self.config.actions(), "action out of range");
        assert!(!payoff.is_nan(), "payoff must not be NaN");
        let n = &mut self.counts[context][action];
        *n += 1;
        let mean = &mut self.means[context][action];
        *mean += (payoff - *mean) / *n as f64;
    }

    fn charge(&mut self, action: usize) -> bool {
        self.ledger.try_charge(self.config.cost(action))
    }

    fn clawback(&mut self, amount: f64) -> f64 {
        self.ledger.clawback(amount)
    }

    fn remaining_budget(&self) -> f64 {
        self.ledger.remaining()
    }

    fn config(&self) -> &BanditConfig {
        &self.config
    }

    fn save_state(&self) -> Option<PolicyState> {
        Some(PolicyState::EpsilonGreedy(EpsilonGreedyState {
            config: self.config.clone(),
            remaining_budget: self.ledger.remaining(),
            epsilon: self.epsilon,
            counts: self.counts.clone(),
            means: self.means.clone(),
            rounds_elapsed: self.rounds_elapsed,
            rng: self.rng.state(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness(epsilon: f64, budget: f64, rounds: u64) -> Vec<usize> {
        let config = BanditConfig::new(1, vec![1.0, 2.0, 3.0], budget, rounds);
        let mut eg = EpsilonGreedy::new(config, epsilon, 5);
        let mut picks = Vec::new();
        for _ in 0..rounds {
            if let Some(a) = eg.select(0) {
                // Action 1 is the best.
                let payoff = [0.3, 0.9, 0.5][a];
                eg.observe(0, a, payoff);
                picks.push(a);
            }
        }
        picks
    }

    #[test]
    fn converges_to_best_action() {
        let picks = harness(0.1, 10_000.0, 300);
        let late_best = picks.iter().skip(150).filter(|&&a| a == 1).count() as f64
            / picks.iter().skip(150).count() as f64;
        assert!(late_best > 0.7, "best-action rate {late_best}");
    }

    #[test]
    fn pure_exploration_spreads_choices() {
        let picks = harness(1.0, 10_000.0, 600);
        for a in 0..3 {
            let share = picks.iter().filter(|&&x| x == a).count() as f64 / picks.len() as f64;
            assert!((share - 1.0 / 3.0).abs() < 0.1, "action {a} share {share}");
        }
    }

    #[test]
    fn respects_budget() {
        let picks = harness(0.3, 20.0, 100);
        let spent: f64 = picks.iter().map(|&a| [1.0, 2.0, 3.0][a]).sum();
        assert!(spent <= 20.0 + 1e-9);
    }

    #[test]
    fn returns_none_when_broke() {
        let config = BanditConfig::new(1, vec![2.0], 3.0, 10);
        let mut eg = EpsilonGreedy::new(config, 0.0, 0);
        assert!(eg.select(0).is_some());
        assert!(eg.select(0).is_none(), "1.0 remaining cannot afford 2.0");
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0, 1]")]
    fn rejects_bad_epsilon() {
        EpsilonGreedy::new(BanditConfig::new(1, vec![1.0], 1.0, 1), 1.5, 0);
    }
}
