//! The non-adaptive incentive baselines of Figure 8: a fixed incentive level
//! for every query, and uniformly random incentive levels.

use crate::config::{BanditConfig, BudgetLedger, CostedBandit};
use crate::state::{FixedState, PolicyState, RandomState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Always plays the same action (the paper's fixed-incentive baseline uses
/// "the maximum incentive for each query, i.e. the total budget divided by
/// the number of queries").
#[derive(Debug, Clone)]
pub struct FixedPolicy {
    config: BanditConfig,
    ledger: BudgetLedger,
    action: usize,
}

impl FixedPolicy {
    /// Creates a policy pinned to `action`.
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of range.
    pub fn new(config: BanditConfig, action: usize) -> Self {
        assert!(action < config.actions(), "action out of range");
        Self {
            ledger: BudgetLedger::new(config.total_budget()),
            action,
            config,
        }
    }

    /// The paper's construction: pin the incentive to `floor(B / horizon)`,
    /// i.e. the largest action whose cost does not exceed the per-query
    /// budget share.
    pub fn max_affordable(config: BanditConfig) -> Self {
        let share = config.total_budget() / config.horizon() as f64;
        let action = config
            .action_costs()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c <= share + 1e-9)
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite costs"))
            .map(|(i, _)| i)
            .unwrap_or_else(|| config.cheapest_action());
        Self::new(config, action)
    }

    /// The pinned action.
    pub fn action(&self) -> usize {
        self.action
    }

    /// Rebuilds a policy from a decoded snapshot state (validated at decode
    /// time); the restore path of [`PolicyState::into_bandit`].
    pub(crate) fn from_state(s: FixedState) -> Self {
        Self {
            ledger: BudgetLedger::new(s.remaining_budget),
            action: s.action,
            config: s.config,
        }
    }
}

impl CostedBandit for FixedPolicy {
    fn name(&self) -> &str {
        "fixed"
    }

    fn select(&mut self, context: usize) -> Option<usize> {
        assert!(context < self.config.contexts(), "context out of range");
        if self.ledger.try_charge(self.config.cost(self.action)) {
            Some(self.action)
        } else {
            // Degrade to the cheapest affordable action rather than dropping
            // the query entirely.
            let cheapest = self.config.cheapest_action();
            if self.ledger.try_charge(self.config.cost(cheapest)) {
                Some(cheapest)
            } else {
                None
            }
        }
    }

    fn observe(&mut self, _context: usize, _action: usize, payoff: f64) {
        assert!(!payoff.is_nan(), "payoff must not be NaN");
    }

    fn charge(&mut self, action: usize) -> bool {
        self.ledger.try_charge(self.config.cost(action))
    }

    fn clawback(&mut self, amount: f64) -> f64 {
        self.ledger.clawback(amount)
    }

    fn remaining_budget(&self) -> f64 {
        self.ledger.remaining()
    }

    fn config(&self) -> &BanditConfig {
        &self.config
    }

    fn save_state(&self) -> Option<PolicyState> {
        Some(PolicyState::Fixed(FixedState {
            config: self.config.clone(),
            remaining_budget: self.ledger.remaining(),
            action: self.action,
        }))
    }
}

/// Plays a uniformly random affordable action each round.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    config: BanditConfig,
    ledger: BudgetLedger,
    rng: StdRng,
}

impl RandomPolicy {
    /// Creates a random policy.
    pub fn new(config: BanditConfig, seed: u64) -> Self {
        Self {
            ledger: BudgetLedger::new(config.total_budget()),
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// Rebuilds a policy from a decoded snapshot state (validated at decode
    /// time); the restore path of [`PolicyState::into_bandit`].
    pub(crate) fn from_state(s: RandomState) -> Self {
        Self {
            ledger: BudgetLedger::new(s.remaining_budget),
            rng: StdRng::from_state(s.rng),
            config: s.config,
        }
    }
}

impl CostedBandit for RandomPolicy {
    fn name(&self) -> &str {
        "random"
    }

    fn select(&mut self, context: usize) -> Option<usize> {
        assert!(context < self.config.contexts(), "context out of range");
        let affordable = self
            .ledger
            .affordable(self.config.action_costs().iter().enumerate());
        if affordable.is_empty() {
            return None;
        }
        let action = affordable[self.rng.gen_range(0..affordable.len())];
        let charged = self.ledger.try_charge(self.config.cost(action));
        debug_assert!(charged);
        Some(action)
    }

    fn observe(&mut self, _context: usize, _action: usize, payoff: f64) {
        assert!(!payoff.is_nan(), "payoff must not be NaN");
    }

    fn charge(&mut self, action: usize) -> bool {
        self.ledger.try_charge(self.config.cost(action))
    }

    fn clawback(&mut self, amount: f64) -> f64 {
        self.ledger.clawback(amount)
    }

    fn remaining_budget(&self) -> f64 {
        self.ledger.remaining()
    }

    fn config(&self) -> &BanditConfig {
        &self.config
    }

    fn save_state(&self) -> Option<PolicyState> {
        Some(PolicyState::Random(RandomState {
            config: self.config.clone(),
            remaining_budget: self.ledger.remaining(),
            rng: self.rng.state(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BanditConfig {
        BanditConfig::new(2, vec![1.0, 2.0, 4.0], 20.0, 10)
    }

    #[test]
    fn fixed_always_plays_its_action_while_affordable() {
        let mut p = FixedPolicy::new(config(), 1);
        for _ in 0..10 {
            assert_eq!(p.select(0), Some(1));
        }
        assert_eq!(p.remaining_budget(), 0.0);
    }

    #[test]
    fn fixed_degrades_to_cheapest_then_none() {
        let mut p = FixedPolicy::new(BanditConfig::new(1, vec![1.0, 4.0], 5.0, 2), 1);
        assert_eq!(p.select(0), Some(1)); // 4.0 spent, 1.0 left
        assert_eq!(p.select(0), Some(0)); // degrade to 1.0
        assert_eq!(p.select(0), None);
    }

    #[test]
    fn max_affordable_picks_per_query_share() {
        // 20 budget / 10 rounds = 2.0 per query -> action 1 (cost 2.0).
        let p = FixedPolicy::max_affordable(config());
        assert_eq!(p.action(), 1);
        // Tiny budget falls back to the cheapest action.
        let p = FixedPolicy::max_affordable(BanditConfig::new(1, vec![2.0, 4.0], 1.0, 10));
        assert_eq!(p.action(), 0);
    }

    #[test]
    fn random_spreads_over_affordable_actions() {
        let mut p = RandomPolicy::new(BanditConfig::new(1, vec![1.0, 2.0], 3000.0, 1000), 7);
        let mut counts = [0usize; 2];
        for _ in 0..1000 {
            counts[p.select(0).unwrap()] += 1;
        }
        assert!(counts[0] > 300 && counts[1] > 300, "counts {counts:?}");
    }

    #[test]
    fn random_respects_budget() {
        let mut p = RandomPolicy::new(BanditConfig::new(1, vec![1.0, 5.0], 7.0, 100), 3);
        let mut spent = 0.0;
        while let Some(a) = p.select(0) {
            spent += [1.0, 5.0][a];
        }
        assert!(spent <= 7.0 + 1e-9);
    }
}
