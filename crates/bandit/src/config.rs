//! Shared configuration and the bandit trait.

use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};

/// Static description of a constrained contextual bandit problem: the number
/// of contexts, the per-action costs, the total budget, and the horizon
/// (expected number of pulls).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BanditConfig {
    contexts: usize,
    action_costs: Vec<f64>,
    total_budget: f64,
    horizon: u64,
    context_distribution: Option<Vec<f64>>,
}

impl BanditConfig {
    /// Creates a problem description.
    ///
    /// # Panics
    ///
    /// Panics if `contexts == 0`, `action_costs` is empty or contains a
    /// non-positive cost, `total_budget < 0`, or `horizon == 0`.
    pub fn new(contexts: usize, action_costs: Vec<f64>, total_budget: f64, horizon: u64) -> Self {
        assert!(contexts > 0, "need at least one context");
        assert!(!action_costs.is_empty(), "need at least one action");
        assert!(
            action_costs.iter().all(|c| *c > 0.0 && c.is_finite()),
            "action costs must be positive and finite"
        );
        assert!(total_budget >= 0.0, "budget must be non-negative");
        assert!(horizon > 0, "horizon must be positive");
        Self {
            contexts,
            action_costs,
            total_budget,
            horizon,
            context_distribution: None,
        }
    }

    /// Declares the long-run context distribution when it is known a priori
    /// (the paper's four temporal contexts are uniform by construction:
    /// 10 sensing cycles each). Without this, policies estimate the
    /// distribution empirically — which is badly misleading when contexts
    /// arrive in long blocks rather than i.i.d.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from `contexts`, any entry is negative,
    /// or the entries do not sum to 1 (within 1e-6).
    pub fn with_context_distribution(mut self, distribution: Vec<f64>) -> Self {
        assert_eq!(
            distribution.len(),
            self.contexts,
            "one probability per context"
        );
        assert!(
            distribution.iter().all(|p| *p >= 0.0),
            "probabilities must be non-negative"
        );
        let sum: f64 = distribution.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "probabilities must sum to 1");
        self.context_distribution = Some(distribution);
        self
    }

    /// The declared context distribution, if any.
    pub fn context_distribution(&self) -> Option<&[f64]> {
        self.context_distribution.as_deref()
    }

    /// Number of contexts `Z`.
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// Number of actions `K`.
    pub fn actions(&self) -> usize {
        self.action_costs.len()
    }

    /// Per-action costs, indexed by action id.
    pub fn action_costs(&self) -> &[f64] {
        &self.action_costs
    }

    /// Cost of one action.
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of range.
    pub fn cost(&self, action: usize) -> f64 {
        self.action_costs[action]
    }

    /// Total budget `B` of Eq. 4.
    pub fn total_budget(&self) -> f64 {
        self.total_budget
    }

    /// Horizon `T` (total expected pulls).
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Index of the cheapest action (the always-affordable fallback).
    pub fn cheapest_action(&self) -> usize {
        self.action_costs
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite costs"))
            .map(|(i, _)| i)
            .expect("non-empty actions")
    }
}

/// A budget-constrained contextual bandit over integer contexts/actions.
///
/// The protocol per round is: observe a context, call
/// [`CostedBandit::select`] (which charges the chosen action's cost against
/// the internal budget and returns `None` once even the cheapest action is
/// unaffordable), then later call [`CostedBandit::observe`] with the revealed
/// payoff. Payoffs are expected to be normalized to `[0, 1]` — for IPD this
/// is `1 - delay / delay_ceiling`, implementing the paper's "additive inverse
/// of the average delay" (Definition 12).
pub trait CostedBandit: Send {
    /// Human-readable policy name for reports.
    fn name(&self) -> &str;

    /// Chooses an action for `context`, charging its cost to the budget.
    /// Returns `None` when the remaining budget cannot afford any action.
    ///
    /// # Panics
    ///
    /// Implementations panic if `context` is out of range.
    fn select(&mut self, context: usize) -> Option<usize>;

    /// Reveals the payoff of a previously selected action.
    ///
    /// # Panics
    ///
    /// Implementations panic if `context`/`action` are out of range or the
    /// payoff is NaN.
    fn observe(&mut self, context: usize, action: usize, payoff: f64);

    /// Charges the cost of `action` to the budget without consulting the
    /// policy, returning whether the charge succeeded. Callers that re-issue
    /// an already-selected action (e.g. reposting a timed-out crowd task at
    /// an escalated incentive) use this so the spend still comes out of the
    /// same ledger [`CostedBandit::select`] draws from — the budget constraint
    /// holds across every posting path, not just policy-chosen ones.
    ///
    /// # Panics
    ///
    /// Implementations panic if `action` is out of range.
    fn charge(&mut self, action: usize) -> bool;

    /// Removes up to `amount` from the remaining budget and returns how much
    /// was actually removed (less than `amount` when the ledger holds less).
    /// This is the budget-shock path: an external clawback (platform refund
    /// reversal, sponsor pulling funds mid-run) hits the same ledger that
    /// [`CostedBandit::select`] draws from, so the policy's pacing reacts to
    /// the shrunken budget on the very next selection.
    ///
    /// # Panics
    ///
    /// Implementations panic if `amount` is negative or not finite.
    fn clawback(&mut self, amount: f64) -> f64;

    /// Budget still available.
    fn remaining_budget(&self) -> f64;

    /// The problem description this policy was built for.
    fn config(&self) -> &BanditConfig;

    /// The policy's full live state in serializable form, used by runtime
    /// checkpoints. Policies without a serialized form return `None` (the
    /// default), and a snapshot containing them fails with an explicit
    /// error instead of panicking.
    fn save_state(&self) -> Option<crate::PolicyState> {
        None
    }
}

// Snapshot codec: decoding re-checks the `new`/`with_context_distribution`
// invariants and reports `Invalid` instead of panicking.
impl Encode for BanditConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.contexts.encode(out);
        self.action_costs.encode(out);
        self.total_budget.encode(out);
        self.horizon.encode(out);
        self.context_distribution.encode(out);
    }
}

impl Decode for BanditConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let config = Self {
            contexts: usize::decode(r)?,
            action_costs: Vec::<f64>::decode(r)?,
            total_budget: f64::decode(r)?,
            horizon: u64::decode(r)?,
            context_distribution: Option::<Vec<f64>>::decode(r)?,
        };
        let mut valid = config.contexts > 0
            && !config.action_costs.is_empty()
            && config
                .action_costs
                .iter()
                .all(|c| *c > 0.0 && c.is_finite())
            && config.total_budget.is_finite()
            && config.total_budget >= 0.0
            && config.horizon > 0;
        if let Some(dist) = &config.context_distribution {
            valid = valid
                && dist.len() == config.contexts
                && dist.iter().all(|p| p.is_finite() && *p >= 0.0)
                && (dist.iter().sum::<f64>() - 1.0).abs() < 1e-6;
        }
        if !valid {
            return Err(DecodeError::Invalid);
        }
        Ok(config)
    }
}

/// Shared budget ledger used by the policy implementations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct BudgetLedger {
    remaining: f64,
}

impl BudgetLedger {
    pub(crate) fn new(total: f64) -> Self {
        Self { remaining: total }
    }

    pub(crate) fn remaining(&self) -> f64 {
        self.remaining
    }

    /// Charges `cost` if affordable; returns whether the charge succeeded.
    pub(crate) fn try_charge(&mut self, cost: f64) -> bool {
        if cost <= self.remaining + 1e-9 {
            self.remaining = (self.remaining - cost).max(0.0);
            true
        } else {
            false
        }
    }

    /// Removes up to `amount`, clamping at zero; returns the amount taken.
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or not finite.
    pub(crate) fn clawback(&mut self, amount: f64) -> f64 {
        assert!(
            amount >= 0.0 && amount.is_finite(),
            "clawback must be non-negative and finite"
        );
        let taken = amount.min(self.remaining);
        self.remaining -= taken;
        taken
    }

    /// The most expensive affordable action, if any.
    pub(crate) fn affordable<'a>(
        &self,
        costs: impl IntoIterator<Item = (usize, &'a f64)>,
    ) -> Vec<usize> {
        costs
            .into_iter()
            .filter(|(_, &c)| c <= self.remaining + 1e-9)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_accessors_work() {
        let c = BanditConfig::new(4, vec![2.0, 1.0, 4.0], 10.0, 5);
        assert_eq!(c.contexts(), 4);
        assert_eq!(c.actions(), 3);
        assert_eq!(c.cost(2), 4.0);
        assert_eq!(c.cheapest_action(), 1);
        assert_eq!(c.total_budget(), 10.0);
        assert_eq!(c.horizon(), 5);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_cost_rejected() {
        BanditConfig::new(1, vec![0.0], 1.0, 1);
    }

    #[test]
    fn ledger_charges_until_exhausted() {
        let mut ledger = BudgetLedger::new(5.0);
        assert!(ledger.try_charge(2.0));
        assert!(ledger.try_charge(3.0));
        assert!(!ledger.try_charge(0.5));
        assert_eq!(ledger.remaining(), 0.0);
    }

    #[test]
    fn ledger_clawback_clamps_at_zero() {
        let mut ledger = BudgetLedger::new(5.0);
        assert_eq!(ledger.clawback(2.0), 2.0);
        assert_eq!(ledger.remaining(), 3.0);
        assert_eq!(ledger.clawback(10.0), 3.0);
        assert_eq!(ledger.remaining(), 0.0);
        assert_eq!(ledger.clawback(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "clawback must be non-negative")]
    fn ledger_clawback_rejects_negative() {
        BudgetLedger::new(5.0).clawback(-1.0);
    }

    #[test]
    fn ledger_lists_affordable_actions() {
        let ledger = BudgetLedger::new(3.0);
        let costs = [1.0, 2.0, 4.0];
        let affordable = ledger.affordable(costs.iter().enumerate());
        assert_eq!(affordable, vec![0, 1]);
    }

    #[test]
    fn ledger_tolerates_float_dust() {
        let mut ledger = BudgetLedger::new(0.3);
        assert!(ledger.try_charge(0.1));
        assert!(ledger.try_charge(0.1));
        assert!(
            ledger.try_charge(0.1),
            "0.3 - 0.1 - 0.1 must still afford 0.1"
        );
    }
}
