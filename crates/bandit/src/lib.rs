//! Reinforcement-learning substrate for CrowdLearn.
//!
//! The paper's Incentive Policy Design module (Section IV-B) maps incentive
//! selection onto a **constrained contextual multi-armed bandit** (CCMB): at
//! each sensing cycle the temporal context is observed, an incentive level
//! (action) is chosen for the cycle's queries, the cost is charged against a
//! global budget, and the payoff — the additive inverse of the crowd's
//! response delay — is revealed only after the crowd answers. The paper
//! solves the CCMB "using the adaptive linear programming approach in
//! [Wu et al., NeurIPS 2015]"; [`UcbAlp`] implements that algorithm
//! (UCB estimates + per-round adaptive LP via Lagrangian search).
//!
//! The crate also provides the building blocks the evaluation compares
//! against and the learner MIC uses:
//!
//! * [`EpsilonGreedy`] — budget-aware contextual ε-greedy,
//! * [`ThompsonSampling`] — Gaussian posterior sampling (ablations),
//! * [`Exp3`] — the adversarial bandit, robust to non-stationary crowds,
//! * [`FixedPolicy`] / [`RandomPolicy`] — the fixed- and random-incentive
//!   baselines of Figure 8,
//! * [`RegretTracker`] — pseudo-regret accounting against a known oracle,
//! * [`ExpWeights`] — Hedge/exponential-weights updates (Cesa-Bianchi &
//!   Lugosi), used by MIC's dynamic expert-weight strategy,
//! * the [`CostedBandit`] trait tying them together.
//!
//! # Example
//!
//! ```
//! use crowdlearn_bandit::{BanditConfig, CostedBandit, UcbAlp};
//!
//! let config = BanditConfig::new(4, vec![1.0, 2.0, 4.0], 100.0, 50);
//! let mut bandit = UcbAlp::new(config, 7);
//! let action = bandit.select(0).expect("budget available");
//! bandit.observe(0, action, 0.8);
//! assert!(bandit.remaining_budget() < 100.0);
//! ```

//! Determinism: a simulation crate under `detlint` rules D1-D6 (DESIGN.md
//! "Determinism invariants") — BTree collections only, virtual time only,
//! seeded RNG only.
//!
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod epsilon_greedy;
mod exp3;
mod hedge;
mod regret;
mod simple;
mod state;
mod thompson;
mod ucb_alp;

pub use config::{BanditConfig, CostedBandit};
pub use epsilon_greedy::EpsilonGreedy;
pub use exp3::Exp3;
pub use hedge::ExpWeights;
pub use regret::RegretTracker;
pub use simple::{FixedPolicy, RandomPolicy};
pub use state::{EpsilonGreedyState, FixedState, PolicyState, RandomState, UcbAlpState};
pub use thompson::ThompsonSampling;
pub use ucb_alp::UcbAlp;
