//! UCB-ALP: the constrained contextual bandit solver of Wu, Srikant, Liu &
//! Jiang, "Algorithms with logarithmic or sublinear regret for constrained
//! contextual bandits" (NeurIPS 2015) — the algorithm the paper cites for
//! solving the IPD objective (Eq. 4).
//!
//! Per round the algorithm:
//!
//! 1. maintains UCB estimates of the expected payoff of every
//!    (context, action) pair,
//! 2. computes the *average remaining budget per remaining round*
//!    `rho = B_remaining / tau_remaining`,
//! 3. solves the adaptive linear program
//!    `max sum_z pi(z) sum_a p(a|z) UCB(z,a)` subject to
//!    `sum_z pi(z) sum_a p(a|z) c(a) <= rho` via a Lagrangian bisection
//!    (the LP has a single coupling constraint, so the optimum is attained
//!    by per-context argmax of `UCB(z,a) - lambda c(a)` with at most one
//!    mixed context),
//! 4. samples the action for the observed context from the LP solution.
//!
//! The context distribution `pi` is estimated from the empirical context
//! frequencies (initialized uniform), as the paper's four temporal contexts
//! are equally likely by construction.

use crate::config::{BanditConfig, BudgetLedger, CostedBandit};
use crate::state::{PolicyState, UcbAlpState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The UCB-ALP policy. See the module docs for the algorithm.
///
/// # Example
///
/// ```
/// use crowdlearn_bandit::{BanditConfig, CostedBandit, UcbAlp};
///
/// let mut bandit = UcbAlp::new(BanditConfig::new(2, vec![1.0, 5.0], 60.0, 20), 3);
/// for round in 0..20 {
///     let ctx = round % 2;
///     if let Some(action) = bandit.select(ctx) {
///         // cheap action pays well in context 0, expensive in context 1
///         let payoff = if (ctx == 0) == (action == 0) { 0.9 } else { 0.2 };
///         bandit.observe(ctx, action, payoff);
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct UcbAlp {
    config: BanditConfig,
    ledger: BudgetLedger,
    /// Pull counts per (context, action).
    counts: Vec<Vec<u64>>,
    /// Mean payoff per (context, action).
    means: Vec<Vec<f64>>,
    /// Observed context frequencies (for the pi estimate).
    context_counts: Vec<u64>,
    rounds_elapsed: u64,
    exploration_scale: f64,
    rng: StdRng,
}

impl UcbAlp {
    /// Default exploration coefficient; tuned for payoffs normalized to
    /// `[0, 1]` and the paper's short (hundreds of pulls) horizons — the
    /// textbook `sqrt(2 ln t / n)` bonus would dwarf the payoff gaps and
    /// turn the LP into a pure cheapest-arm race.
    pub const DEFAULT_EXPLORATION_SCALE: f64 = 0.08;

    /// Creates a fresh policy for the given problem.
    pub fn new(config: BanditConfig, seed: u64) -> Self {
        let z = config.contexts();
        let k = config.actions();
        Self {
            ledger: BudgetLedger::new(config.total_budget()),
            counts: vec![vec![0; k]; z],
            means: vec![vec![0.0; k]; z],
            context_counts: vec![0; z],
            rounds_elapsed: 0,
            exploration_scale: Self::DEFAULT_EXPLORATION_SCALE,
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// Overrides the exploration coefficient (`0.0` disables optimism).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative or NaN.
    pub fn with_exploration_scale(mut self, scale: f64) -> Self {
        assert!(scale >= 0.0 && !scale.is_nan(), "scale must be >= 0");
        self.exploration_scale = scale;
        self
    }

    /// Rebuilds a policy from a decoded snapshot state (validated at decode
    /// time); the restore path of [`PolicyState::into_bandit`].
    pub(crate) fn from_state(s: UcbAlpState) -> Self {
        Self {
            ledger: BudgetLedger::new(s.remaining_budget),
            counts: s.counts,
            means: s.means,
            context_counts: s.context_counts,
            rounds_elapsed: s.rounds_elapsed,
            exploration_scale: s.exploration_scale,
            rng: StdRng::from_state(s.rng),
            config: s.config,
        }
    }

    /// UCB index of a (context, action) pair. Untried pairs get `+inf` so
    /// they are explored first.
    fn ucb(&self, z: usize, a: usize) -> f64 {
        let n = self.counts[z][a];
        if n == 0 {
            return f64::INFINITY;
        }
        let t = self.rounds_elapsed.max(2) as f64;
        self.means[z][a] + self.exploration_scale * (t.ln() / n as f64).sqrt()
    }

    /// Context distribution for the LP: the declared one when known,
    /// otherwise the uniform-smoothed empirical estimate.
    fn pi(&self) -> Vec<f64> {
        if let Some(known) = self.config.context_distribution() {
            return known.to_vec();
        }
        let z = self.config.contexts();
        let total: u64 = self.context_counts.iter().sum();
        self.context_counts
            .iter()
            .map(|&c| (c as f64 + 1.0) / (total as f64 + z as f64))
            .collect()
    }

    /// Expected per-round cost of the greedy policy at Lagrange multiplier
    /// `lambda`, plus the per-context argmax actions it induces.
    fn greedy_at_lambda(&self, lambda: f64, ucbs: &[Vec<f64>]) -> (f64, Vec<usize>) {
        let pi = self.pi();
        let mut expected_cost = 0.0;
        let mut choices = Vec::with_capacity(self.config.contexts());
        for z in 0..self.config.contexts() {
            let mut best = 0;
            let mut best_score = f64::NEG_INFINITY;
            for (a, &ucb) in ucbs[z].iter().enumerate() {
                // Untried actions dominate regardless of lambda (forced
                // exploration), but cap their score so cost-tiebreaks work.
                let score = if ucb.is_infinite() {
                    1e12 - lambda * self.config.cost(a)
                } else {
                    ucb - lambda * self.config.cost(a)
                };
                if score > best_score {
                    best_score = score;
                    best = a;
                }
            }
            expected_cost += pi[z] * self.config.cost(best);
            choices.push(best);
        }
        (expected_cost, choices)
    }

    /// Solves the adaptive LP: returns the per-context plan of the smallest
    /// lambda whose greedy policy fits within `rho` expected cost, together
    /// with the boundary plan just above it and the mixing probability that
    /// makes the expected cost exactly `rho`.
    ///
    /// The LP optimum at a single coupling constraint randomizes between the
    /// two adjacent deterministic plans; without the mixing, per-round slack
    /// accumulates and gets burned late in flat (low-marginal-payoff)
    /// contexts.
    fn solve_alp(&self, rho: f64) -> (Vec<usize>, Option<(Vec<usize>, f64)>) {
        let z = self.config.contexts();
        let k = self.config.actions();
        let ucbs: Vec<Vec<f64>> = (0..z)
            .map(|zz| (0..k).map(|aa| self.ucb(zz, aa)).collect())
            .collect();

        // If the unconstrained greedy fits, take it.
        let (cost0, choices0) = self.greedy_at_lambda(0.0, &ucbs);
        if cost0 <= rho {
            return (choices0, None);
        }

        // Bisection on lambda. Upper bound: lambda so large the cheapest
        // action wins everywhere.
        let max_ucb = ucbs
            .iter()
            .flatten()
            .filter(|u| u.is_finite())
            .fold(1.0f64, |m, &u| m.max(u.abs()));
        let cost_span = self
            .config
            .action_costs()
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &c| {
                (lo.min(c), hi.max(c))
            });
        let mut lo = 0.0;
        let mut hi = (2.0 * max_ucb + 1e12) / (cost_span.1 - cost_span.0).max(1e-9);
        let mut feasible = None;
        let mut infeasible = Some((cost0, choices0));
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            let (cost, choices) = self.greedy_at_lambda(mid, &ucbs);
            if cost <= rho {
                feasible = Some((cost, choices));
                hi = mid;
            } else {
                infeasible = Some((cost, choices));
                lo = mid;
            }
        }
        match feasible {
            Some((c_f, plan_f)) => {
                let mix = infeasible.and_then(|(c_i, plan_i)| {
                    if c_i > c_f + 1e-12 {
                        let p = ((rho - c_f) / (c_i - c_f)).clamp(0.0, 1.0);
                        (p > 0.0).then_some((plan_i, p))
                    } else {
                        None
                    }
                });
                (plan_f, mix)
            }
            // Even at huge lambda the cheapest actions may not fit rho (rho
            // below minimum cost): fall back to cheapest everywhere.
            None => (vec![self.config.cheapest_action(); z], None),
        }
    }
}

impl CostedBandit for UcbAlp {
    fn name(&self) -> &str {
        "UCB-ALP"
    }

    fn select(&mut self, context: usize) -> Option<usize> {
        assert!(context < self.config.contexts(), "context out of range");
        self.rounds_elapsed += 1;
        self.context_counts[context] += 1;

        let remaining_rounds = self
            .config
            .horizon()
            .saturating_sub(self.rounds_elapsed - 1)
            .max(1);
        let rho = self.ledger.remaining() / remaining_rounds as f64;
        let (plan, boundary) = self.solve_alp(rho);
        let mut action = plan[context];
        if let Some((upper_plan, p)) = boundary {
            if self.rng.gen::<f64>() < p {
                action = upper_plan[context];
            }
        }

        if !self.ledger.try_charge(self.config.cost(action)) {
            // LP answer unaffordable right now: degrade to the most
            // expensive affordable action below it, preferring exploration
            // value.
            let affordable = self
                .ledger
                .affordable(self.config.action_costs().iter().enumerate());
            if affordable.is_empty() {
                return None;
            }
            action = *affordable
                .iter()
                .max_by(|&&a, &&b| {
                    self.ucb(context, a)
                        .partial_cmp(&self.ucb(context, b))
                        .expect("UCBs comparable")
                })
                .expect("non-empty affordable set");
            let charged = self.ledger.try_charge(self.config.cost(action));
            debug_assert!(charged, "affordable action must charge");
        }
        Some(action)
    }

    fn observe(&mut self, context: usize, action: usize, payoff: f64) {
        assert!(context < self.config.contexts(), "context out of range");
        assert!(action < self.config.actions(), "action out of range");
        assert!(!payoff.is_nan(), "payoff must not be NaN");
        let n = &mut self.counts[context][action];
        *n += 1;
        let mean = &mut self.means[context][action];
        *mean += (payoff - *mean) / *n as f64;
    }

    fn charge(&mut self, action: usize) -> bool {
        self.ledger.try_charge(self.config.cost(action))
    }

    fn clawback(&mut self, amount: f64) -> f64 {
        self.ledger.clawback(amount)
    }

    fn remaining_budget(&self) -> f64 {
        self.ledger.remaining()
    }

    fn config(&self) -> &BanditConfig {
        &self.config
    }

    fn save_state(&self) -> Option<PolicyState> {
        Some(PolicyState::UcbAlp(UcbAlpState {
            config: self.config.clone(),
            remaining_budget: self.ledger.remaining(),
            counts: self.counts.clone(),
            means: self.means.clone(),
            context_counts: self.context_counts.clone(),
            rounds_elapsed: self.rounds_elapsed,
            exploration_scale: self.exploration_scale,
            rng: self.rng.state(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic environment: payoff depends on (context, action) with a
    /// known optimum per context.
    fn payoff(ctx: usize, action: usize) -> f64 {
        // Context 0 rewards expensive actions strongly; context 1 is flat
        // (cheap actions are effectively optimal per cost).
        match ctx {
            0 => [0.1, 0.4, 0.9][action],
            _ => [0.75, 0.8, 0.82][action],
        }
    }

    fn run(total_budget: f64, rounds: u64) -> (UcbAlp, Vec<(usize, usize)>) {
        let config = BanditConfig::new(2, vec![1.0, 2.0, 4.0], total_budget, rounds);
        let mut bandit = UcbAlp::new(config, 11);
        let mut picks = Vec::new();
        for r in 0..rounds {
            let ctx = (r % 2) as usize;
            if let Some(a) = bandit.select(ctx) {
                bandit.observe(ctx, a, payoff(ctx, a));
                picks.push((ctx, a));
            }
        }
        (bandit, picks)
    }

    #[test]
    fn never_overspends_budget() {
        for budget in [3.0, 10.0, 50.0, 120.0] {
            let (bandit, picks) = run(budget, 100);
            let spent: f64 = picks.iter().map(|&(_, a)| [1.0, 2.0, 4.0][a]).sum();
            assert!(spent <= budget + 1e-9, "spent {spent} of {budget}");
            assert!((bandit.remaining_budget() - (budget - spent)).abs() < 1e-6);
        }
    }

    #[test]
    fn rich_budget_finds_per_context_optimum() {
        // Budget 400 over 100 rounds: can always afford the best action.
        let (_, picks) = run(400.0, 100);
        let late: Vec<_> = picks.iter().skip(60).collect();
        let ctx0_best = late
            .iter()
            .filter(|(c, _)| *c == 0)
            .filter(|(_, a)| *a == 2)
            .count() as f64
            / late.iter().filter(|(c, _)| *c == 0).count().max(1) as f64;
        assert!(
            ctx0_best > 0.7,
            "context 0 should converge to action 2, rate {ctx0_best}"
        );
    }

    #[test]
    fn tight_budget_spends_where_it_matters() {
        // rho = 2.0: cannot afford action 2 everywhere. The LP should spend
        // on context 0 (payoff gap 0.8) and save on context 1 (flat).
        let (_, picks) = run(200.0, 100);
        let late: Vec<_> = picks.iter().skip(40).collect();
        let avg_cost = |ctx: usize| {
            let xs: Vec<f64> = late
                .iter()
                .filter(|(c, _)| *c == ctx)
                .map(|&&(_, a)| [1.0f64, 2.0, 4.0][a])
                .collect();
            xs.iter().sum::<f64>() / xs.len().max(1) as f64
        };
        assert!(
            avg_cost(0) > avg_cost(1),
            "must pay more in the payoff-sensitive context: {} vs {}",
            avg_cost(0),
            avg_cost(1)
        );
    }

    #[test]
    fn exhausted_budget_returns_none() {
        let config = BanditConfig::new(1, vec![1.0], 2.0, 10);
        let mut bandit = UcbAlp::new(config, 1);
        assert!(bandit.select(0).is_some());
        assert!(bandit.select(0).is_some());
        assert!(bandit.select(0).is_none());
        assert_eq!(bandit.remaining_budget(), 0.0);
    }

    #[test]
    fn explores_every_action_at_least_once_with_budget() {
        let (bandit, picks) = run(1000.0, 60);
        for a in 0..3 {
            assert!(
                picks.iter().any(|&(_, pa)| pa == a),
                "action {a} never tried; counts {:?}",
                bandit.counts
            );
        }
    }

    #[test]
    #[should_panic(expected = "context out of range")]
    fn select_rejects_bad_context() {
        let mut bandit = UcbAlp::new(BanditConfig::new(2, vec![1.0], 5.0, 5), 0);
        bandit.select(2);
    }

    #[test]
    #[should_panic(expected = "payoff must not be NaN")]
    fn observe_rejects_nan() {
        let mut bandit = UcbAlp::new(BanditConfig::new(1, vec![1.0], 5.0, 5), 0);
        bandit.observe(0, 0, f64::NAN);
    }

    #[test]
    fn is_deterministic_given_seed_and_payoffs() {
        let (_, a) = run(120.0, 50);
        let (_, b) = run(120.0, 50);
        assert_eq!(a, b);
    }
}
