//! Property-based tests for the bandit substrate: budget safety, state
//! sanity and Hedge invariants under arbitrary interaction sequences.

use crowdlearn_bandit::{
    BanditConfig, CostedBandit, EpsilonGreedy, Exp3, ExpWeights, RandomPolicy, ThompsonSampling,
    UcbAlp,
};
use proptest::prelude::*;

fn run_policy(
    mut policy: Box<dyn CostedBandit>,
    contexts: usize,
    costs: &[f64],
    rounds: u64,
    payoffs: &[f64],
) -> (f64, f64) {
    let mut spent = 0.0;
    for r in 0..rounds {
        let ctx = (r % contexts as u64) as usize;
        if let Some(a) = policy.select(ctx) {
            spent += costs[a];
            let payoff = payoffs[(r as usize + a) % payoffs.len()];
            policy.observe(ctx, a, payoff);
        }
    }
    (spent, policy.remaining_budget())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No policy ever spends more than its budget, and the ledger always
    /// accounts exactly for what was spent.
    #[test]
    fn no_policy_overspends(
        seed in 0u64..5_000,
        budget in 0.5f64..80.0,
        rounds in 1u64..120,
        c1 in 0.5f64..3.0,
        c2 in 0.5f64..6.0,
        c3 in 0.5f64..12.0,
        payoffs in proptest::collection::vec(0.0f64..1.0, 3..12),
    ) {
        let costs = vec![c1, c2, c3];
        let mk = || BanditConfig::new(3, costs.clone(), budget, rounds);
        let policies: Vec<Box<dyn CostedBandit>> = vec![
            Box::new(UcbAlp::new(mk(), seed)),
            Box::new(EpsilonGreedy::new(mk(), 0.3, seed)),
            Box::new(ThompsonSampling::new(mk(), seed)),
            Box::new(Exp3::new(mk(), 0.2, seed)),
            Box::new(RandomPolicy::new(mk(), seed)),
        ];
        for policy in policies {
            let (spent, remaining) = run_policy(policy, 3, &costs, rounds, &payoffs);
            prop_assert!(spent <= budget + 1e-6, "spent {spent} of {budget}");
            prop_assert!((remaining - (budget - spent)).abs() < 1e-6);
            prop_assert!(remaining >= -1e-9);
        }
    }

    /// With a known uniform context distribution, UCB-ALP accepts any
    /// declared simplex point and still never overspends.
    #[test]
    fn ucb_alp_with_declared_distribution_is_budget_safe(
        seed in 0u64..5_000,
        w in 0.05f64..0.95,
    ) {
        let dist = vec![w, 1.0 - w];
        let config = BanditConfig::new(2, vec![1.0, 4.0], 30.0, 40)
            .with_context_distribution(dist);
        let policy: Box<dyn CostedBandit> = Box::new(UcbAlp::new(config, seed));
        let (spent, _) = run_policy(policy, 2, &[1.0, 4.0], 40, &[0.2, 0.8]);
        prop_assert!(spent <= 30.0 + 1e-6);
    }

    /// Hedge weights remain a probability vector under arbitrary loss
    /// sequences, and a uniformly better expert never ends with less weight.
    #[test]
    fn hedge_is_a_probability_vector(
        eta in 0.01f64..3.0,
        losses in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..60),
    ) {
        let mut hedge = ExpWeights::new(2, eta);
        for (a, b) in &losses {
            // Expert 0 always incurs at most expert 1's loss.
            let la = a.min(*b);
            hedge.update(&[la, *b]);
        }
        let w = hedge.weights();
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(w[0] >= w[1] - 1e-9, "dominant expert lost weight: {w:?}");
    }

    /// Policies are deterministic given their seed and the payoff sequence.
    #[test]
    fn policies_are_reproducible(seed in 0u64..5_000) {
        let costs = vec![1.0, 2.0];
        let payoffs = vec![0.3, 0.9, 0.5];
        let mk = || BanditConfig::new(2, costs.clone(), 40.0, 50);
        let a = run_policy(Box::new(UcbAlp::new(mk(), seed)), 2, &costs, 50, &payoffs);
        let b = run_policy(Box::new(UcbAlp::new(mk(), seed)), 2, &costs, 50, &payoffs);
        prop_assert_eq!(a, b);
    }
}
