//! Property-based tests on the classifier simulators.

use crowdlearn_classifiers::{profiles, ClassDistribution, Classifier};
use crowdlearn_dataset::{Dataset, DatasetConfig, LabeledImage};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Expert votes are valid distributions for every image, every expert,
    /// and every training state.
    #[test]
    fn votes_are_always_distributions(seed in 0u64..500, retrain_rounds in 0usize..3) {
        let ds = Dataset::generate(
            &DatasetConfig::paper().with_total(90).with_train_count(45).with_seed(seed),
        );
        let train: Vec<LabeledImage> =
            ds.train().iter().cloned().map(LabeledImage::ground_truth).collect();
        for mut expert in profiles::paper_committee(seed) {
            for _ in 0..retrain_rounds {
                expert.retrain(&train);
            }
            for img in ds.test().iter().take(12) {
                let vote = expert.predict(img);
                let sum: f64 = vote.probs().iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
                prop_assert!(vote.probs().iter().all(|p| (0.0..=1.0).contains(p)));
                prop_assert!(vote.entropy() >= -1e-12);
            }
        }
    }

    /// Prediction is a pure function: repeated calls agree; retraining with
    /// an empty batch changes nothing.
    #[test]
    fn predictions_are_pure(seed in 0u64..500) {
        let ds = Dataset::generate(
            &DatasetConfig::paper().with_total(60).with_train_count(30).with_seed(seed),
        );
        let mut expert = profiles::vgg16(seed);
        let img = ds.test()[0].clone();
        let before = expert.predict(&img);
        prop_assert_eq!(expert.predict(&img), before.clone());
        expert.retrain(&[]);
        prop_assert_eq!(expert.predict(&img), before);
    }

    /// Delay is positive, scales linearly in the batch size, and is stable
    /// per cycle.
    #[test]
    fn delays_are_positive_and_linear(seed in 0u64..500, cycle in 0u64..100, batch in 1usize..40) {
        for expert in profiles::paper_committee(seed) {
            let one = expert.execution_delay_secs(1, cycle);
            let many = expert.execution_delay_secs(batch, cycle);
            prop_assert!(one > 0.0);
            prop_assert!((many - one * batch as f64).abs() < 1e-9 * batch as f64 + 1e-9);
            prop_assert_eq!(expert.execution_delay_secs(batch, cycle), many);
        }
    }

    /// Mixtures of expert votes stay normalized for arbitrary positive
    /// weights.
    #[test]
    fn weighted_mixtures_are_normalized(
        w1 in 0.01f64..10.0,
        w2 in 0.01f64..10.0,
        w3 in 0.01f64..10.0,
        seed in 0u64..500,
    ) {
        let ds = Dataset::generate(
            &DatasetConfig::paper().with_total(60).with_train_count(30).with_seed(seed),
        );
        let committee = profiles::paper_committee(seed);
        let img = &ds.test()[0];
        let votes: Vec<ClassDistribution> = committee.iter().map(|e| e.predict(img)).collect();
        let mix = ClassDistribution::weighted_mixture(
            [w1, w2, w3].iter().copied().zip(votes.iter()),
        );
        prop_assert!((mix.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
