//! The statistical engine behind every simulated DDA expert.

use crate::{ClassDistribution, Classifier};
use crowdlearn_dataset::visual_layout::{dim, BLOCK, FAMILIES};
use crowdlearn_dataset::{DamageLabel, EvidenceMatrix, LabeledImage, SyntheticImage, MEANS_ROW};
use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};

/// Execution-delay model of an expert: per-image seconds with deterministic
/// per-cycle jitter, calibrated against Table III of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayProfile {
    /// Mean seconds to classify one image.
    pub per_image_secs: f64,
    /// Relative jitter amplitude (e.g. `0.1` = ±10% across cycles).
    pub jitter_frac: f64,
}

impl DelayProfile {
    /// Creates a delay profile.
    ///
    /// # Panics
    ///
    /// Panics if `per_image_secs` is not positive or `jitter_frac` is not in
    /// `[0, 1)`.
    pub fn new(per_image_secs: f64, jitter_frac: f64) -> Self {
        assert!(per_image_secs > 0.0, "delay must be positive");
        assert!(
            (0.0..1.0).contains(&jitter_frac),
            "jitter must be in [0, 1)"
        );
        Self {
            per_image_secs,
            jitter_frac,
        }
    }
}

/// Static description of a simulated expert's behaviour.
///
/// Construct via the presets in [`crate::profiles`] or build a custom profile
/// for failure-injection tests. See the crate docs for how each knob maps to
/// a property of real DDA models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpertProfile {
    /// Display name (e.g. `"VGG16"`).
    pub name: String,
    /// Relative attention over the three visual feature families
    /// (deep texture, handcrafted, spatial); normalized internally.
    pub family_weights: [f64; FAMILIES],
    /// Logit scale: higher values produce more confident (lower entropy)
    /// votes.
    pub confidence_gain: f64,
    /// Standard deviation of the expert's own per-class perception noise in
    /// evidence units, at training factor 1.
    pub perception_noise: f64,
    /// Prior toward "no damage" in evidence units; models the fact that
    /// feature-based DDA models report no damage when nothing fires (which
    /// is what happens on low-resolution images, paper Fig. 1c).
    pub no_damage_bias: f64,
    /// Noise multiplier floor approached with infinite training data.
    pub noise_floor: f64,
    /// Noise multiplier for a completely untrained model.
    pub noise_ceiling: f64,
    /// Sample-count scale of the exponential training curve.
    pub training_tau: f64,
    /// Execution-delay model.
    pub delay: DelayProfile,
    /// Seed decorrelating this expert's noise from its committee peers.
    pub seed: u64,
}

impl ExpertProfile {
    fn validate(&self) {
        assert!(
            self.family_weights.iter().all(|w| *w >= 0.0)
                && self.family_weights.iter().sum::<f64>() > 0.0,
            "family weights must be non-negative with positive sum"
        );
        assert!(self.confidence_gain > 0.0, "gain must be positive");
        assert!(self.perception_noise >= 0.0, "noise must be >= 0");
        assert!(
            self.noise_floor > 0.0 && self.noise_ceiling >= self.noise_floor,
            "noise factors must satisfy 0 < floor <= ceiling"
        );
        assert!(self.training_tau > 0.0, "training tau must be positive");
    }
}

/// A simulated black-box DDA expert (see crate docs for the model).
///
/// # Example
///
/// ```
/// use crowdlearn_classifiers::{profiles, Classifier};
/// use crowdlearn_dataset::{Dataset, DatasetConfig};
///
/// let dataset = Dataset::generate(&DatasetConfig::paper());
/// let expert = profiles::ddm(0);
/// let vote = expert.predict(&dataset.test()[0]);
/// assert_eq!(vote, expert.predict(&dataset.test()[0])); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulatedExpert {
    profile: ExpertProfile,
    /// Effective training mass: correct labels add 1, wrong labels subtract
    /// 0.5 (noisy feedback hurts fine-tuning), floored at 0.
    effective_samples: f64,
    /// Raw count of samples ever fed to `retrain`.
    seen_samples: usize,
    /// Bumped on every retrain so the noise realization changes, the way a
    /// fine-tuned CNN's individual predictions shift.
    version: u64,
}

impl SimulatedExpert {
    /// Creates an untrained expert from a profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile is internally inconsistent (see
    /// [`ExpertProfile`] field docs).
    pub fn new(profile: ExpertProfile) -> Self {
        profile.validate();
        Self {
            profile,
            effective_samples: 0.0,
            seen_samples: 0,
            version: 0,
        }
    }

    /// The expert's static profile.
    pub fn profile(&self) -> &ExpertProfile {
        &self.profile
    }

    /// Current noise multiplier given the training curve: decays
    /// exponentially from `noise_ceiling` to `noise_floor` as effective
    /// training samples accumulate. This is the only thing retraining can
    /// improve — the *innate* deception failure is untouched by training,
    /// matching the paper's observation that "no matter how many training
    /// samples are added, the AI performance will not increase" for flawed
    /// models.
    pub fn noise_factor(&self) -> f64 {
        let p = &self.profile;
        p.noise_floor
            + (p.noise_ceiling - p.noise_floor) * (-self.effective_samples / p.training_tau).exp()
    }

    fn evidence_scores(&self, image: &SyntheticImage) -> [f64; DamageLabel::COUNT] {
        let weights = normalized(self.profile.family_weights);
        let visual = image.visual_evidence();
        let mut scores = [0.0; DamageLabel::COUNT];
        for (class, score) in scores.iter_mut().enumerate() {
            for (family, w) in weights.iter().enumerate() {
                let mut block_mean = 0.0;
                for k in 0..BLOCK {
                    block_mean += visual[dim(family, class, k)];
                }
                block_mean /= BLOCK as f64;
                *score += w * block_mean;
            }
        }
        scores
    }

    /// Predicts a whole batch from a pre-gathered [`EvidenceMatrix`],
    /// bit-identical to mapping [`Classifier::predict`] over the same images.
    ///
    /// This is the committee hot path: the matrix is built once per sensing
    /// cycle and shared by every member, so each expert only pays for the
    /// sums and its own noise draws. Three ingredients make it fast without
    /// perturbing a single bit relative to the scalar path:
    ///
    /// * per-expert invariants (normalized family weights, noise scale, the
    ///   no-damage bias term) are computed once — they are pure functions of
    ///   expert state, so hoisting reproduces the same values;
    /// * evidence block means come precomputed from
    ///   [`EvidenceMatrix::block_means`] — they are member-independent, so the
    ///   matrix sums each `(image, family, class)` block exactly once for the
    ///   whole committee, `k` ascending before the single divide (the exact
    ///   float-op sequence of `evidence_scores`); the weighting below then
    ///   accumulates families in index order 0..FAMILIES like the scalar path;
    /// * the splitmix64 noise chains share hoisted prefixes (see `mix_b`/
    ///   `mix_c`/`mix_d`): 4 chain heads per image instead of 4 full chains
    ///   per class, cutting the per-image hash steps from 48 to 18.
    pub fn predict_evidence(&self, evidence: &EvidenceMatrix) -> Vec<ClassDistribution> {
        let weights = normalized(self.profile.family_weights);
        let noise_scale = self.profile.perception_noise * self.noise_factor();
        let gain = self.profile.confidence_gain;
        let bias = gain * self.profile.no_damage_bias;

        // Hoisted chain prefixes: `predict` draws, per class, two gaussians
        // keyed (seed, id, STABLE, class) and (seed, id, version+1, class),
        // each needing a main and an ALT_CHAIN uniform. Seed- and id-stages
        // are shared across all of an image's draws.
        const STABLE: u64 = 0x0057_ab1e;
        let head_main = splitmix64(self.profile.seed);
        let head_alt = splitmix64(self.profile.seed ^ ALT_CHAIN);
        let versioned_key = self.version.wrapping_add(1);

        let mut votes = Vec::with_capacity(evidence.len());
        let means = evidence.block_means().chunks_exact(MEANS_ROW);
        for (img_means, id) in means.zip(evidence.ids()) {
            let id = u64::from(id.0);
            let img_main = mix_b(head_main, id);
            let img_alt = mix_b(head_alt, id);
            let stable_main = mix_c(img_main, STABLE);
            let stable_alt = mix_c(img_alt, STABLE);
            let versioned_main = mix_c(img_main, versioned_key);
            let versioned_alt = mix_c(img_alt, versioned_key);

            let mut logits = [0.0; DamageLabel::COUNT];
            for (class, logit) in logits.iter_mut().enumerate() {
                let mut score = 0.0;
                for (family, w) in weights.iter().enumerate() {
                    score += w * img_means[family * DamageLabel::COUNT + class];
                }
                let class = class as u64;
                let stable = box_muller(
                    unit_open(mix_d(stable_main, class)),
                    unit_open(mix_d(stable_alt, class)),
                );
                let versioned = box_muller(
                    unit_open(mix_d(versioned_main, class)),
                    unit_open(mix_d(versioned_alt, class)),
                );
                let noise = (0.8 * stable + 0.6 * versioned) * noise_scale;
                *logit = gain * (score + noise);
            }
            logits[DamageLabel::NoDamage.index()] += bias;
            votes.push(ClassDistribution::from_logits(logits));
        }
        votes
    }
}

impl Classifier for SimulatedExpert {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn predict(&self, image: &SyntheticImage) -> ClassDistribution {
        let scores = self.evidence_scores(image);
        let noise_scale = self.profile.perception_noise * self.noise_factor();
        let mut logits = [0.0; DamageLabel::COUNT];
        for (class, logit) in logits.iter_mut().enumerate() {
            // Fine-tuning shifts a model's individual predictions, but most
            // of its per-image idiosyncrasy persists: blend a version-stable
            // component with a version-dependent one (coefficients keep unit
            // variance). This keeps retraining gains visible instead of
            // burying them under full prediction reshuffles.
            let stable = hash_gaussian(
                self.profile.seed,
                image.id().0 as u64,
                0x0057_ab1e,
                class as u64,
            );
            let versioned = hash_gaussian(
                self.profile.seed,
                image.id().0 as u64,
                self.version.wrapping_add(1),
                class as u64,
            );
            let noise = (0.8 * stable + 0.6 * versioned) * noise_scale;
            *logit = self.profile.confidence_gain * (scores[class] + noise);
        }
        logits[DamageLabel::NoDamage.index()] +=
            self.profile.confidence_gain * self.profile.no_damage_bias;
        ClassDistribution::from_logits(logits)
    }

    fn predict_batch(&self, images: &[SyntheticImage]) -> Vec<ClassDistribution> {
        self.predict_evidence(&EvidenceMatrix::from_images(images))
    }

    fn predict_batch_refs(&self, images: &[&SyntheticImage]) -> Vec<ClassDistribution> {
        self.predict_evidence(&EvidenceMatrix::from_refs(images.iter().copied()))
    }

    fn retrain(&mut self, samples: &[LabeledImage]) {
        if samples.is_empty() {
            return;
        }
        for sample in samples {
            if sample.label == sample.image.truth() {
                self.effective_samples += 1.0;
            } else {
                self.effective_samples = (self.effective_samples - 0.5).max(0.0);
            }
        }
        self.seen_samples += samples.len();
        self.version += 1;
    }

    fn execution_delay_secs(&self, batch_size: usize, cycle: u64) -> f64 {
        let jitter = hash_uniform(self.profile.seed, cycle, 0x000d_e1a1, 1) * 2.0 - 1.0;
        self.profile.per_image_delay()
            * batch_size as f64
            * (1.0 + self.profile.delay.jitter_frac * jitter)
    }

    fn training_samples(&self) -> usize {
        self.seen_samples
    }

    fn as_simulated(&self) -> Option<&SimulatedExpert> {
        Some(self)
    }
}

// Snapshot codec: a simulated expert is its profile plus its mutable
// training state, all of it plain data. Decoding re-validates the profile
// through `SimulatedExpert::new`'s checks by construction order, but must
// not panic — out-of-contract values surface as `DecodeError::Invalid`.
impl Encode for DelayProfile {
    fn encode(&self, out: &mut Vec<u8>) {
        self.per_image_secs.encode(out);
        self.jitter_frac.encode(out);
    }
}

impl Decode for DelayProfile {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let per_image_secs = f64::decode(r)?;
        let jitter_frac = f64::decode(r)?;
        // `is_finite` (not just `is_nan`): a `+inf` per-image delay would
        // pass a NaN/sign check and poison every downstream delay sum.
        if !per_image_secs.is_finite()
            || per_image_secs <= 0.0
            || !(0.0..1.0).contains(&jitter_frac)
        {
            return Err(DecodeError::Invalid);
        }
        Ok(Self {
            per_image_secs,
            jitter_frac,
        })
    }
}

impl Encode for ExpertProfile {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.family_weights.encode(out);
        self.confidence_gain.encode(out);
        self.perception_noise.encode(out);
        self.no_damage_bias.encode(out);
        self.noise_floor.encode(out);
        self.noise_ceiling.encode(out);
        self.training_tau.encode(out);
        self.delay.encode(out);
        self.seed.encode(out);
    }
}

impl Decode for ExpertProfile {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let profile = Self {
            name: String::decode(r)?,
            family_weights: <[f64; FAMILIES]>::decode(r)?,
            confidence_gain: f64::decode(r)?,
            perception_noise: f64::decode(r)?,
            no_damage_bias: f64::decode(r)?,
            noise_floor: f64::decode(r)?,
            noise_ceiling: f64::decode(r)?,
            training_tau: f64::decode(r)?,
            delay: DelayProfile::decode(r)?,
            seed: u64::decode(r)?,
        };
        let valid = profile.family_weights.iter().all(|w| *w >= 0.0)
            && profile.family_weights.iter().sum::<f64>() > 0.0
            && profile.confidence_gain > 0.0
            && profile.perception_noise >= 0.0
            && profile.noise_floor > 0.0
            && profile.noise_ceiling >= profile.noise_floor
            && profile.training_tau > 0.0;
        if !valid {
            return Err(DecodeError::Invalid);
        }
        Ok(profile)
    }
}

impl Encode for SimulatedExpert {
    fn encode(&self, out: &mut Vec<u8>) {
        self.profile.encode(out);
        self.effective_samples.encode(out);
        self.seen_samples.encode(out);
        self.version.encode(out);
    }
}

impl Decode for SimulatedExpert {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let profile = ExpertProfile::decode(r)?;
        let effective_samples = f64::decode(r)?;
        // `is_finite`: `effective_samples = +inf` would freeze the training
        // curve at the noise floor forever and survive every re-encode.
        if !effective_samples.is_finite() || effective_samples < 0.0 {
            return Err(DecodeError::Invalid);
        }
        Ok(Self {
            profile,
            effective_samples,
            seen_samples: usize::decode(r)?,
            version: u64::decode(r)?,
        })
    }
}

impl ExpertProfile {
    fn per_image_delay(&self) -> f64 {
        self.delay.per_image_secs
    }
}

fn normalized(weights: [f64; FAMILIES]) -> [f64; FAMILIES] {
    let sum: f64 = weights.iter().sum();
    weights.map(|w| w / sum)
}

/// SplitMix64 hash step.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// The 4-tuple hash is a chain of four splitmix64 steps, one per key
// component. The chain is exposed as explicit stages so the batch path can
// hoist shared prefixes (per-expert `a`, per-image `a,b`, per-variant
// `a,b,c`) and still produce the exact bits of `hash_uniform(a, b, c, d)` —
// the composition is identical, only the sharing differs.
fn mix_b(h: u64, b: u64) -> u64 {
    splitmix64(h ^ b.wrapping_mul(0x9e37_79b9))
}

fn mix_c(h: u64, c: u64) -> u64 {
    splitmix64(h ^ c.wrapping_mul(0x85eb_ca6b))
}

fn mix_d(h: u64, d: u64) -> u64 {
    splitmix64(h ^ d.wrapping_mul(0xc2b2_ae35))
}

/// Alternate-chain seed offset: decorrelates the second Box-Muller uniform
/// from the first.
const ALT_CHAIN: u64 = 0xdead_beef;

/// Maps a hash to the open interval `(0, 1)`.
///
/// Uses the top 52 bits centered on the bucket midpoint: `(m + 0.5) / 2^52`
/// lies strictly inside `(0, 1)` for every `m in 0..2^52`, so `ln` in
/// Box-Muller never sees 0 or 1. (The previous `((h >> 11) + 1) / 2^53`
/// mapping reached exactly `1.0` at the all-ones hash, making
/// `hash_gaussian` emit an exact `0.0` via `ln(1) = 0`. 52 bits, not 53:
/// half-integers are only exactly representable below `2^52`, so the 53-bit
/// midpoint `(2^53 - 1) + 0.5` would round back up to `2^53`.)
fn unit_open(h: u64) -> f64 {
    ((h >> 12) as f64 + 0.5) / (1u64 << 52) as f64
}

/// Deterministic uniform sample in `(0, 1)` from a 4-tuple key.
fn hash_uniform(a: u64, b: u64, c: u64, d: u64) -> f64 {
    unit_open(mix_d(mix_c(mix_b(splitmix64(a), b), c), d))
}

/// Box-Muller transform over two uniforms in `(0, 1)`.
fn box_muller(u1: f64, u2: f64) -> f64 {
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Deterministic standard-normal sample from a 4-tuple key (Box-Muller over
/// two decorrelated uniforms).
pub(crate) fn hash_gaussian(a: u64, b: u64, c: u64, d: u64) -> f64 {
    let u1 = hash_uniform(a, b, c, d);
    let u2 = hash_uniform(a ^ ALT_CHAIN, b, c, d);
    box_muller(u1, u2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crowdlearn_dataset::{Dataset, DatasetConfig, ImageAttribute};

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::paper())
    }

    fn trained(mut expert: SimulatedExpert, ds: &Dataset) -> SimulatedExpert {
        let train: Vec<_> = ds
            .train()
            .iter()
            .cloned()
            .map(LabeledImage::ground_truth)
            .collect();
        expert.retrain(&train);
        expert
    }

    #[test]
    fn predictions_are_deterministic() {
        let ds = dataset();
        let expert = trained(profiles::vgg16(3), &ds);
        let img = &ds.test()[0];
        assert_eq!(expert.predict(img), expert.predict(img));
    }

    #[test]
    fn retraining_changes_the_noise_realization() {
        let ds = dataset();
        let mut expert = trained(profiles::vgg16(3), &ds);
        let img = ds.test()[0].clone();
        let before = expert.predict(&img);
        expert.retrain(&[LabeledImage::ground_truth(img.clone())]);
        let after = expert.predict(&img);
        assert_ne!(before, after, "version bump must reshuffle noise");
    }

    #[test]
    fn training_reduces_noise_factor_monotonically() {
        let ds = dataset();
        let mut expert = profiles::vgg16(3);
        let untrained_factor = expert.noise_factor();
        assert!((untrained_factor - expert.profile().noise_ceiling).abs() < 1e-9);
        let train: Vec<_> = ds
            .train()
            .iter()
            .cloned()
            .map(LabeledImage::ground_truth)
            .collect();
        expert.retrain(&train);
        let trained_factor = expert.noise_factor();
        assert!(trained_factor < untrained_factor);
        assert!(trained_factor >= expert.profile().noise_floor);
    }

    #[test]
    fn wrong_labels_hurt_training() {
        let ds = dataset();
        let img = ds.train()[0].clone();
        let wrong_label = DamageLabel::from_index((img.truth().index() + 1) % DamageLabel::COUNT);
        let mut a = profiles::vgg16(3);
        let mut b = profiles::vgg16(3);
        a.retrain(&[LabeledImage::ground_truth(img.clone())]);
        b.retrain(&[LabeledImage::new(img, wrong_label)]);
        assert!(a.noise_factor() < b.noise_factor());
    }

    #[test]
    fn experts_are_confidently_wrong_on_deceptive_images() {
        let ds = dataset();
        let experts = [
            trained(profiles::vgg16(1), &ds),
            trained(profiles::bovw(2), &ds),
            trained(profiles::ddm(3), &ds),
        ];
        for expert in &experts {
            let mut fooled = 0usize;
            let mut total = 0usize;
            let mut confidence_sum = 0.0;
            // Measure over every fake in the dataset: the test split alone
            // holds ~13 fakes, too few for a stable rate.
            for img in ds
                .train()
                .iter()
                .chain(ds.test().iter())
                .filter(|i| i.attribute() == ImageAttribute::Fake)
            {
                let vote = expert.predict(img);
                total += 1;
                if vote.argmax() == DamageLabel::Severe {
                    fooled += 1;
                }
                confidence_sum += vote.max_prob();
            }
            assert!(
                fooled as f64 / total as f64 > 0.9,
                "{} must be fooled by nearly all fakes: {fooled}/{total}",
                expert.name()
            );
            assert!(
                confidence_sum / total as f64 > 0.8,
                "{} must be *confidently* wrong on fakes",
                expert.name()
            );
        }
    }

    #[test]
    fn retraining_does_not_fix_deceptive_failures() {
        let ds = dataset();
        let mut expert = trained(profiles::ddm(3), &ds);
        // Feed it every test ground truth five times over — far more data
        // than any crowd could provide.
        let all: Vec<_> = ds
            .test()
            .iter()
            .cloned()
            .map(LabeledImage::ground_truth)
            .collect();
        for _ in 0..5 {
            expert.retrain(&all);
        }
        let mut wrong = 0;
        let mut total = 0;
        for img in ds.test().iter().filter(|i| i.misleads_ai()) {
            total += 1;
            if expert.predict(img).argmax() != img.truth() {
                wrong += 1;
            }
        }
        assert!(
            wrong as f64 / total as f64 > 0.9,
            "deceptive images must stay broken: {wrong}/{total}"
        );
    }

    #[test]
    fn delay_scales_with_batch_and_stays_near_mean() {
        let expert = profiles::vgg16(1);
        let d1 = expert.execution_delay_secs(10, 0);
        let per_image = expert.profile().delay.per_image_secs;
        assert!((d1 / 10.0 - per_image).abs() / per_image < 0.2);
        assert_eq!(
            expert.execution_delay_secs(10, 0),
            d1,
            "deterministic per cycle"
        );
        assert_ne!(
            expert.execution_delay_secs(10, 1),
            d1,
            "varies across cycles"
        );
    }

    #[test]
    fn hash_gaussian_has_roughly_standard_moments() {
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|i| hash_gaussian(42, i, 7, 1)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn different_seeds_decorrelate_experts() {
        let ds = dataset();
        let a = trained(profiles::vgg16(1), &ds);
        let b = trained(profiles::vgg16(2), &ds);
        let img = &ds.test()[5];
        assert_ne!(a.predict(img), b.predict(img));
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn zero_family_weights_rejected() {
        let mut p = profiles::vgg16(1).profile().clone();
        p.family_weights = [0.0; FAMILIES];
        SimulatedExpert::new(p);
    }

    #[test]
    fn unit_open_is_a_genuinely_open_interval() {
        // Regression: the old `(m + 1) / 2^53` mapping hit exactly 1.0 at the
        // all-ones hash, so `ln(u1) = 0` collapsed Box-Muller to exactly 0.
        assert!(unit_open(u64::MAX) < 1.0, "top hash must stay below 1");
        assert!(unit_open(0) > 0.0, "bottom hash must stay above 0");
        for h in [0, 1, u64::MAX - 1, u64::MAX, 1u64 << 63, (1u64 << 53) - 1] {
            let u = unit_open(h);
            assert!(u > 0.0 && u < 1.0, "unit_open({h}) = {u} escaped (0, 1)");
            let g = box_muller(u, u);
            assert!(g.is_finite(), "box_muller over extreme uniforms: {g}");
        }
        // The extreme draw itself must be a genuine (finite, nonzero-capable)
        // gaussian: u1 at the top of the range no longer forces 0.
        assert!((-2.0 * unit_open(u64::MAX).ln()).sqrt() > 0.0);
    }

    #[test]
    fn batch_paths_are_bit_identical_to_scalar() {
        let ds = dataset();
        for expert in [
            profiles::vgg16(1),
            trained(profiles::bovw(2), &ds),
            trained(profiles::ddm(3), &ds),
        ] {
            let batch = &ds.test()[..25];
            let scalar: Vec<ClassDistribution> = batch.iter().map(|i| expert.predict(i)).collect();
            let batched = expert.predict_batch(batch);
            assert_eq!(batched.len(), scalar.len());
            for (b, s) in batched.iter().zip(&scalar) {
                for (pb, ps) in b.probs().iter().zip(s.probs()) {
                    assert_eq!(pb.to_bits(), ps.to_bits(), "{}", expert.name());
                }
            }
            let refs: Vec<&SyntheticImage> = batch.iter().collect();
            assert_eq!(expert.predict_batch_refs(&refs), batched);
        }
    }

    #[test]
    fn decode_rejects_non_finite_delay() {
        // Crafted frame: +inf per_image_secs passes a NaN-only check but must
        // be rejected as Invalid (it would poison every delay computation).
        for bad in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN, 0.0, -1.0] {
            let mut bytes = Vec::new();
            bad.encode(&mut bytes);
            0.1f64.encode(&mut bytes);
            let mut r = Reader::new(&bytes);
            assert!(
                matches!(DelayProfile::decode(&mut r), Err(DecodeError::Invalid)),
                "per_image_secs = {bad} must be rejected"
            );
        }
        // Sanity: a well-formed frame still round-trips.
        let profile = DelayProfile::new(3.5, 0.1);
        let mut bytes = Vec::new();
        profile.encode(&mut bytes);
        assert_eq!(DelayProfile::decode(&mut Reader::new(&bytes)), Ok(profile));
    }

    #[test]
    fn decode_rejects_non_finite_effective_samples() {
        let expert = profiles::vgg16(1);
        for bad in [f64::INFINITY, f64::NAN, -1.0] {
            // Crafted frame: valid profile, then an out-of-contract training
            // mass, then well-formed trailing fields.
            let mut bytes = Vec::new();
            expert.profile().encode(&mut bytes);
            bad.encode(&mut bytes);
            0usize.encode(&mut bytes);
            0u64.encode(&mut bytes);
            let mut r = Reader::new(&bytes);
            assert!(
                matches!(SimulatedExpert::decode(&mut r), Err(DecodeError::Invalid)),
                "effective_samples = {bad} must be rejected"
            );
        }
        let ds = dataset();
        let trained_expert = trained(profiles::vgg16(1), &ds);
        let mut bytes = Vec::new();
        trained_expert.encode(&mut bytes);
        assert_eq!(
            SimulatedExpert::decode(&mut Reader::new(&bytes)),
            Ok(trained_expert)
        );
    }
}
