//! The interface CrowdLearn uses to talk to black-box DDA algorithms.

use crate::ClassDistribution;
use crowdlearn_dataset::{LabeledImage, SyntheticImage};

/// A black-box damage-assessment classifier.
///
/// This is the full surface the CrowdLearn framework is allowed to touch: it
/// may ask for a probabilistic vote, feed back labeled samples for
/// retraining, and account for execution delay. It may *not* inspect the
/// model internals — that is the "black-box AI" premise of the paper.
///
/// Implementations must be deterministic: calling [`Classifier::predict`]
/// twice on the same image without an intervening retrain must return the
/// same vote. The simulated experts achieve this by hashing the image id and
/// the training version into their noise terms.
pub trait Classifier: Send {
    /// Short human-readable identifier (e.g. `"VGG16"`), used in reports.
    fn name(&self) -> &str;

    /// Produces the expert vote for one image (Definition 6): a normalized
    /// probability distribution over the damage classes.
    fn predict(&self, image: &SyntheticImage) -> ClassDistribution;

    /// Produces one vote per image of a batch.
    ///
    /// Contract: the result must be **bit-identical** to mapping
    /// [`Classifier::predict`] over `images` in order — batching is a
    /// performance hint, never a semantic one (DESIGN.md "Batched committee
    /// inference"). The default per-image loop satisfies this trivially, so
    /// external implementations keep working; implementations with a cheaper
    /// whole-batch formulation (e.g. [`SimulatedExpert`] over an
    /// [`EvidenceMatrix`]) override it.
    ///
    /// [`SimulatedExpert`]: crate::SimulatedExpert
    /// [`EvidenceMatrix`]: crowdlearn_dataset::EvidenceMatrix
    fn predict_batch(&self, images: &[SyntheticImage]) -> Vec<ClassDistribution> {
        images.iter().map(|image| self.predict(image)).collect()
    }

    /// [`Classifier::predict_batch`] over a batch of image *references* —
    /// sensing cycles hand out scattered references into the dataset, so the
    /// runtime cannot form a contiguous `&[SyntheticImage]` without cloning.
    /// Same bit-identity contract as `predict_batch`.
    fn predict_batch_refs(&self, images: &[&SyntheticImage]) -> Vec<ClassDistribution> {
        images.iter().map(|image| self.predict(image)).collect()
    }

    /// Fine-tunes the model on additional labeled samples. Labels may come
    /// from ground truth (initial training) or from the crowd (MIC's model
    /// retraining strategy). Implementations decide how much each sample
    /// helps; mislabeled samples may hurt.
    fn retrain(&mut self, samples: &[LabeledImage]);

    /// Simulated execution time, in seconds, for classifying one batch of
    /// `batch_size` images. Deterministic per `(self, cycle)` pair; `cycle`
    /// lets implementations vary delay across sensing cycles without
    /// interior mutability.
    fn execution_delay_secs(&self, batch_size: usize, cycle: u64) -> f64;

    /// Number of labeled samples this classifier has been trained on so far.
    fn training_samples(&self) -> usize;

    /// The concrete [`SimulatedExpert`](crate::SimulatedExpert) behind this
    /// classifier, if it is one. This is the (object-safe) hook runtime
    /// snapshots use to serialize committee members; classifiers without a
    /// serialized form return `None` (the default), and a snapshot
    /// containing them fails with an explicit error instead of panicking.
    fn as_simulated(&self) -> Option<&crate::SimulatedExpert> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdlearn_dataset::DamageLabel;

    /// A trivial in-test implementation to pin down object safety and the
    /// default behavior contract.
    struct ConstantClassifier(usize);

    impl Classifier for ConstantClassifier {
        fn name(&self) -> &str {
            "constant"
        }
        fn predict(&self, _image: &SyntheticImage) -> ClassDistribution {
            ClassDistribution::delta(DamageLabel::NoDamage)
        }
        fn retrain(&mut self, samples: &[LabeledImage]) {
            self.0 += samples.len();
        }
        fn execution_delay_secs(&self, batch_size: usize, _cycle: u64) -> f64 {
            batch_size as f64
        }
        fn training_samples(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn classifier_is_object_safe() {
        let boxed: Box<dyn Classifier> = Box::new(ConstantClassifier(0));
        assert_eq!(boxed.name(), "constant");
        assert_eq!(boxed.execution_delay_secs(10, 0), 10.0);
    }

    #[test]
    fn retrain_accumulates_samples() {
        let mut c = ConstantClassifier(0);
        c.retrain(&[]);
        assert_eq!(c.training_samples(), 0);
    }

    #[test]
    fn default_batch_methods_map_predict() {
        use crowdlearn_dataset::{visual_layout, ImageAttribute, ImageId};
        let images: Vec<SyntheticImage> = (0..4)
            .map(|i| {
                SyntheticImage::from_latents(
                    ImageId(i),
                    DamageLabel::NoDamage,
                    ImageAttribute::Plain,
                    DamageLabel::NoDamage,
                    false,
                    vec![0.0; visual_layout::VISUAL_DIM],
                    vec![0.0; SyntheticImage::CONTEXTUAL_DIM],
                )
            })
            .collect();
        let c: Box<dyn Classifier> = Box::new(ConstantClassifier(0));
        let expected: Vec<ClassDistribution> = images.iter().map(|i| c.predict(i)).collect();
        assert_eq!(c.predict_batch(&images), expected);
        let refs: Vec<&SyntheticImage> = images.iter().collect();
        assert_eq!(c.predict_batch_refs(&refs), expected);
    }
}
