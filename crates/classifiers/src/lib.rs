//! Simulated deep-learning damage-assessment (DDA) classifiers.
//!
//! The paper's committee consists of three published DDA models — VGG16
//! (Nguyen et al. 2017), BoVW (Bosch et al. 2007) and DDM (Li et al. 2018) —
//! plus a boosted Ensemble baseline. Training CNNs is out of reach for a pure
//! Rust reproduction (see DESIGN.md §2), so this crate provides *statistical
//! simulators* that preserve every property CrowdLearn interacts with:
//!
//! * a probabilistic class distribution per image (the "expert vote",
//!   Definition 6),
//! * classifier diversity: each expert weighs the three visual feature
//!   families differently, so they disagree on noisy images — the signal
//!   query-by-committee needs,
//! * an *innate flaw*: on deceptive images (fake / close-up / implicit) the
//!   visual evidence points at the wrong class and every feature-based
//!   expert confidently follows it, no matter how much it is retrained —
//!   the failure mode that motivates crowd offloading,
//! * a training curve: [`Classifier::retrain`] adds labeled samples, which
//!   shrinks prediction noise toward an architecture-specific floor
//!   (mirrors fine-tuning on more data),
//! * an execution-delay model calibrated to Table III.
//!
//! # Example
//!
//! ```
//! use crowdlearn_classifiers::{profiles, Classifier};
//! use crowdlearn_dataset::{Dataset, DatasetConfig, LabeledImage};
//!
//! let dataset = Dataset::generate(&DatasetConfig::paper());
//! let mut vgg = profiles::vgg16(1);
//! let train: Vec<_> = dataset.train().iter().cloned()
//!     .map(LabeledImage::ground_truth).collect();
//! vgg.retrain(&train);
//! let vote = vgg.predict(&dataset.test()[0]);
//! assert!((vote.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

//! Determinism: a simulation crate under `detlint` rules D1-D6 (DESIGN.md
//! "Determinism invariants") — BTree collections only, virtual time only,
//! seeded RNG only.
//!
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classifier;
mod distribution;
mod ensemble;
mod expert;
pub mod profiles;
pub mod synthetic;

pub use classifier::Classifier;
pub use distribution::ClassDistribution;
pub use ensemble::BoostedEnsemble;
pub use expert::{DelayProfile, ExpertProfile, SimulatedExpert};
