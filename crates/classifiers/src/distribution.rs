//! Probability distributions over damage classes — the "expert vote" type.

use crowdlearn_dataset::DamageLabel;
use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A normalized probability distribution over the [`DamageLabel`] classes.
///
/// This is the paper's *expert vote* (Definition 6): "a probabilistic
/// distribution of all possible class labels estimated by the algorithm". It
/// is also the committee-vote type (Eq. 2) and the truthful-label
/// distribution produced by CQC that Eq. 5 compares against.
///
/// Invariant: entries are finite, non-negative, and sum to 1 (within
/// floating-point tolerance). All constructors enforce this.
///
/// # Example
///
/// ```
/// use crowdlearn_classifiers::ClassDistribution;
/// use crowdlearn_dataset::DamageLabel;
///
/// let d = ClassDistribution::from_logits([0.0, 1.0, 2.0]);
/// assert_eq!(d.argmax(), DamageLabel::Severe);
/// assert!(d.entropy() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDistribution {
    probs: [f64; DamageLabel::COUNT],
}

impl ClassDistribution {
    /// The uniform distribution (maximum uncertainty).
    pub fn uniform() -> Self {
        Self {
            probs: [1.0 / DamageLabel::COUNT as f64; DamageLabel::COUNT],
        }
    }

    /// A point mass on `label`.
    pub fn delta(label: DamageLabel) -> Self {
        let mut probs = [0.0; DamageLabel::COUNT];
        probs[label.index()] = 1.0;
        Self { probs }
    }

    /// Softmax over raw logits.
    ///
    /// # Panics
    ///
    /// Panics if any logit is NaN.
    pub fn from_logits(logits: [f64; DamageLabel::COUNT]) -> Self {
        assert!(logits.iter().all(|l| !l.is_nan()), "logits must not be NaN");
        let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut probs = [0.0; DamageLabel::COUNT];
        let mut sum = 0.0;
        for (p, &l) in probs.iter_mut().zip(&logits) {
            *p = (l - max).exp();
            sum += *p;
        }
        for p in &mut probs {
            *p /= sum;
        }
        Self { probs }
    }

    /// Builds from raw non-negative weights, normalizing to sum 1.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative/NaN or all weights are zero.
    pub fn from_weights(weights: [f64; DamageLabel::COUNT]) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let sum: f64 = weights.iter().sum();
        assert!(sum > 0.0, "at least one weight must be positive");
        let mut probs = weights;
        for p in &mut probs {
            *p /= sum;
        }
        Self { probs }
    }

    /// The probability vector, indexed by [`DamageLabel::index`].
    pub fn probs(&self) -> &[f64; DamageLabel::COUNT] {
        &self.probs
    }

    /// Probability of a specific label.
    pub fn prob(&self, label: DamageLabel) -> f64 {
        self.probs[label.index()]
    }

    /// The most probable label (ties broken toward the lower class index,
    /// i.e. the less severe label).
    pub fn argmax(&self) -> DamageLabel {
        let mut best = 0;
        for i in 1..DamageLabel::COUNT {
            if self.probs[i] > self.probs[best] {
                best = i;
            }
        }
        DamageLabel::from_index(best)
    }

    /// Confidence of the argmax label.
    pub fn max_prob(&self) -> f64 {
        self.probs.iter().copied().fold(0.0, f64::max)
    }

    /// Shannon entropy in nats (Eq. 3 applies this to the committee vote).
    /// Zero-probability entries contribute zero.
    pub fn entropy(&self) -> f64 {
        -self
            .probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }

    /// KL divergence `KL(self || other)` in nats, with epsilon smoothing so
    /// point masses stay finite.
    pub fn kl_divergence(&self, other: &ClassDistribution) -> f64 {
        const EPS: f64 = 1e-9;
        self.probs
            .iter()
            .zip(&other.probs)
            .map(|(&p, &q)| {
                let p = p.max(EPS);
                let q = q.max(EPS);
                p * (p / q).ln()
            })
            .sum()
    }

    /// Symmetric KL divergence `KL(p||q) + KL(q||p)` — the discrepancy used
    /// by the MIC loss function (Eq. 5).
    pub fn symmetric_kl(&self, other: &ClassDistribution) -> f64 {
        self.kl_divergence(other) + other.kl_divergence(self)
    }

    /// Weighted mixture of distributions — the committee vote of Eq. 2,
    /// "the weighted sum of the label distributions of all committee
    /// members … further normalized with a sum of 1".
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, the iterator is empty, any weight is
    /// negative, or all weights are zero.
    pub fn weighted_mixture<'a, I>(votes: I) -> Self
    where
        I: IntoIterator<Item = (f64, &'a ClassDistribution)>,
    {
        let mut acc = [0.0; DamageLabel::COUNT];
        let mut total_weight = 0.0;
        let mut any = false;
        for (w, dist) in votes {
            assert!(w.is_finite() && w >= 0.0, "mixture weights must be >= 0");
            for (a, &p) in acc.iter_mut().zip(&dist.probs) {
                *a += w * p;
            }
            total_weight += w;
            any = true;
        }
        assert!(any, "mixture needs at least one component");
        assert!(total_weight > 0.0, "at least one weight must be positive");
        Self::from_weights(acc)
    }
}

impl Default for ClassDistribution {
    fn default() -> Self {
        Self::uniform()
    }
}

// Snapshot codec: the raw probability vector travels bit-exactly —
// re-normalizing through `from_weights` on decode could perturb the last
// mantissa bit and break the resume byte-equivalence contract, so decoding
// only *checks* the invariant instead of re-establishing it.
impl Encode for ClassDistribution {
    fn encode(&self, out: &mut Vec<u8>) {
        self.probs.encode(out);
    }
}

impl Decode for ClassDistribution {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let probs = <[f64; DamageLabel::COUNT]>::decode(r)?;
        let valid = probs.iter().all(|p| p.is_finite() && *p >= 0.0)
            && (probs.iter().sum::<f64>() - 1.0).abs() < 1e-6;
        if !valid {
            return Err(DecodeError::Invalid);
        }
        Ok(Self { probs })
    }
}

impl fmt::Display for ClassDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[none={:.3}, moderate={:.3}, severe={:.3}]",
            self.probs[0], self.probs[1], self.probs[2]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_has_max_entropy() {
        let u = ClassDistribution::uniform();
        assert!((u.entropy() - (DamageLabel::COUNT as f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn delta_has_zero_entropy() {
        let d = ClassDistribution::delta(DamageLabel::Severe);
        assert_eq!(d.entropy(), 0.0);
        assert_eq!(d.argmax(), DamageLabel::Severe);
        assert_eq!(d.prob(DamageLabel::Severe), 1.0);
    }

    #[test]
    fn softmax_normalizes_and_orders() {
        let d = ClassDistribution::from_logits([0.0, 1.0, 2.0]);
        assert!((d.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(d.prob(DamageLabel::Severe) > d.prob(DamageLabel::Moderate));
        assert!(d.prob(DamageLabel::Moderate) > d.prob(DamageLabel::NoDamage));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = ClassDistribution::from_logits([1.0, 2.0, 3.0]);
        let b = ClassDistribution::from_logits([101.0, 102.0, 103.0]);
        for (x, y) in a.probs().iter().zip(b.probs()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn kl_of_identical_distributions_is_zero() {
        let d = ClassDistribution::from_logits([0.5, 0.2, 0.1]);
        assert!(d.kl_divergence(&d).abs() < 1e-12);
        assert!(d.symmetric_kl(&d).abs() < 1e-12);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = ClassDistribution::from_weights([0.7, 0.2, 0.1]);
        let q = ClassDistribution::from_weights([0.1, 0.2, 0.7]);
        assert!(p.kl_divergence(&q) > 0.0);
        assert!((p.symmetric_kl(&q) - q.symmetric_kl(&p)).abs() < 1e-12);
    }

    #[test]
    fn kl_with_point_masses_stays_finite() {
        let p = ClassDistribution::delta(DamageLabel::NoDamage);
        let q = ClassDistribution::delta(DamageLabel::Severe);
        assert!(p.symmetric_kl(&q).is_finite());
        assert!(p.symmetric_kl(&q) > 0.0);
    }

    #[test]
    fn weighted_mixture_matches_hand_computation() {
        let p = ClassDistribution::delta(DamageLabel::NoDamage);
        let q = ClassDistribution::delta(DamageLabel::Severe);
        let mix = ClassDistribution::weighted_mixture([(3.0, &p), (1.0, &q)]);
        assert!((mix.prob(DamageLabel::NoDamage) - 0.75).abs() < 1e-12);
        assert!((mix.prob(DamageLabel::Severe) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mixture_ignores_zero_weight_components() {
        let p = ClassDistribution::delta(DamageLabel::NoDamage);
        let q = ClassDistribution::delta(DamageLabel::Severe);
        let mix = ClassDistribution::weighted_mixture([(1.0, &p), (0.0, &q)]);
        assert_eq!(mix.prob(DamageLabel::NoDamage), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one weight must be positive")]
    fn mixture_rejects_all_zero_weights() {
        let p = ClassDistribution::uniform();
        ClassDistribution::weighted_mixture([(0.0, &p)]);
    }

    #[test]
    fn argmax_tie_breaks_to_less_severe() {
        let d = ClassDistribution::from_weights([1.0, 1.0, 1.0]);
        assert_eq!(d.argmax(), DamageLabel::NoDamage);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_weights_rejects_negative() {
        ClassDistribution::from_weights([-0.1, 0.6, 0.5]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!ClassDistribution::uniform().to_string().is_empty());
    }
}
