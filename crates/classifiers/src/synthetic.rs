//! Trivial reference classifiers — oracles, constants, uniform guessers —
//! for harness testing, ablation floors/ceilings, and debugging committee
//! behaviour without the statistical experts' noise.

use crate::{ClassDistribution, Classifier};
use crowdlearn_dataset::{DamageLabel, LabeledImage, SyntheticImage};

/// Always predicts the ground truth with the given confidence — an upper
/// bound for any committee it joins.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleClassifier {
    confidence: f64,
    samples: usize,
}

impl OracleClassifier {
    /// Creates an oracle that puts `confidence` mass on the true label and
    /// splits the rest uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(1/K, 1]`.
    pub fn new(confidence: f64) -> Self {
        assert!(
            confidence > 1.0 / DamageLabel::COUNT as f64 && confidence <= 1.0,
            "confidence must identify the true class"
        );
        Self {
            confidence,
            samples: 0,
        }
    }
}

impl Classifier for OracleClassifier {
    fn name(&self) -> &str {
        "oracle"
    }

    fn predict(&self, image: &SyntheticImage) -> ClassDistribution {
        let rest = (1.0 - self.confidence) / (DamageLabel::COUNT - 1) as f64;
        let mut weights = [rest; DamageLabel::COUNT];
        weights[image.truth().index()] = self.confidence;
        ClassDistribution::from_weights(weights)
    }

    fn retrain(&mut self, samples: &[LabeledImage]) {
        self.samples += samples.len();
    }

    fn execution_delay_secs(&self, _batch_size: usize, _cycle: u64) -> f64 {
        1e-6
    }

    fn training_samples(&self) -> usize {
        self.samples
    }
}

/// Always predicts one fixed label with full confidence — the classic
/// degenerate baseline and a handy adversary for committee tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstantClassifier {
    label: DamageLabel,
    samples: usize,
}

impl ConstantClassifier {
    /// Creates a classifier pinned to `label`.
    pub fn new(label: DamageLabel) -> Self {
        Self { label, samples: 0 }
    }
}

impl Classifier for ConstantClassifier {
    fn name(&self) -> &str {
        "constant"
    }

    fn predict(&self, _image: &SyntheticImage) -> ClassDistribution {
        ClassDistribution::delta(self.label)
    }

    fn retrain(&mut self, samples: &[LabeledImage]) {
        self.samples += samples.len();
    }

    fn execution_delay_secs(&self, _batch_size: usize, _cycle: u64) -> f64 {
        1e-6
    }

    fn training_samples(&self) -> usize {
        self.samples
    }
}

/// Returns the uniform distribution for every image — maximum entropy, so a
/// committee containing it asks the crowd about everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UniformClassifier;

impl Classifier for UniformClassifier {
    fn name(&self) -> &str {
        "uniform"
    }

    fn predict(&self, _image: &SyntheticImage) -> ClassDistribution {
        ClassDistribution::uniform()
    }

    fn retrain(&mut self, _samples: &[LabeledImage]) {}

    fn execution_delay_secs(&self, _batch_size: usize, _cycle: u64) -> f64 {
        1e-6
    }

    fn training_samples(&self) -> usize {
        0
    }
}

/// Predicts the *visual* label — what the image merely looks like — with the
/// given confidence: the archetype of the paper's innately flawed
/// feature-based model (always fooled by fakes, never fixable by training).
#[derive(Debug, Clone, PartialEq)]
pub struct SurfaceReader {
    confidence: f64,
}

impl SurfaceReader {
    /// Creates a surface reader with the given confidence on the visual
    /// label.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(1/K, 1]`.
    pub fn new(confidence: f64) -> Self {
        assert!(
            confidence > 1.0 / DamageLabel::COUNT as f64 && confidence <= 1.0,
            "confidence must identify the visual class"
        );
        Self { confidence }
    }
}

impl Classifier for SurfaceReader {
    fn name(&self) -> &str {
        "surface-reader"
    }

    fn predict(&self, image: &SyntheticImage) -> ClassDistribution {
        let rest = (1.0 - self.confidence) / (DamageLabel::COUNT - 1) as f64;
        let mut weights = [rest; DamageLabel::COUNT];
        weights[image.visual_label().index()] = self.confidence;
        ClassDistribution::from_weights(weights)
    }

    fn retrain(&mut self, _samples: &[LabeledImage]) {}

    fn execution_delay_secs(&self, _batch_size: usize, _cycle: u64) -> f64 {
        1e-6
    }

    fn training_samples(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdlearn_dataset::{Dataset, DatasetConfig};

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::paper().with_total(60).with_train_count(30))
    }

    #[test]
    fn oracle_is_always_right() {
        let ds = dataset();
        let oracle = OracleClassifier::new(0.9);
        for img in ds.images() {
            assert_eq!(oracle.predict(img).argmax(), img.truth());
        }
    }

    #[test]
    fn constant_always_answers_the_same() {
        let ds = dataset();
        let c = ConstantClassifier::new(DamageLabel::Moderate);
        for img in ds.images().iter().take(10) {
            assert_eq!(c.predict(img).argmax(), DamageLabel::Moderate);
        }
    }

    #[test]
    fn uniform_has_maximum_entropy() {
        let ds = dataset();
        let u = UniformClassifier;
        let vote = u.predict(&ds.images()[0]);
        assert!((vote.entropy() - (DamageLabel::COUNT as f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn surface_reader_is_fooled_exactly_on_deceptive_images() {
        let ds = dataset();
        let s = SurfaceReader::new(0.95);
        for img in ds.images() {
            let correct = s.predict(img).argmax() == img.truth();
            assert_eq!(correct, !img.misleads_ai(), "image {}", img.id());
        }
    }

    #[test]
    fn synthetic_classifiers_are_object_safe_and_boxable() {
        let classifiers: Vec<Box<dyn Classifier>> = vec![
            Box::new(OracleClassifier::new(0.8)),
            Box::new(ConstantClassifier::new(DamageLabel::Severe)),
            Box::new(UniformClassifier),
            Box::new(SurfaceReader::new(0.8)),
        ];
        assert_eq!(classifiers.len(), 4);
    }

    #[test]
    #[should_panic(expected = "identify the true class")]
    fn oracle_rejects_chance_confidence() {
        OracleClassifier::new(1.0 / 3.0);
    }
}
