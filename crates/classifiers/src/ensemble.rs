//! The boosted Ensemble baseline (Table II), aggregating VGG16 + BoVW + DDM
//! with confidence-rated weights in the spirit of Schapire & Singer (1999).

use crate::{ClassDistribution, Classifier, SimulatedExpert};
use crowdlearn_dataset::{EvidenceMatrix, LabeledImage, SyntheticImage};

/// Seconds of aggregation overhead added on top of the slowest member, tuned
/// so the Ensemble's per-cycle delay matches Table III's 85.82 s. (The paper
/// runs members concurrently but pays a boosting/aggregation cost.)
const DEFAULT_OVERHEAD_SECS: f64 = 33.2;

/// A boosting-style aggregation of DDA experts.
///
/// Each member receives a weight `alpha_m = ln((1 - err_m) / err_m) +
/// ln(K - 1)` (the SAMME multi-class boosting weight) computed on a
/// validation set; prediction is the alpha-weighted mixture of the members'
/// votes.
///
/// # Example
///
/// ```
/// use crowdlearn_classifiers::{profiles, BoostedEnsemble, Classifier};
/// use crowdlearn_dataset::{Dataset, DatasetConfig, LabeledImage};
///
/// let dataset = Dataset::generate(&DatasetConfig::paper());
/// let train: Vec<_> = dataset.train().iter().cloned()
///     .map(LabeledImage::ground_truth).collect();
/// let mut ensemble = BoostedEnsemble::new(profiles::paper_committee(0));
/// ensemble.retrain(&train);
/// let vote = ensemble.predict(&dataset.test()[0]);
/// assert!((vote.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct BoostedEnsemble {
    members: Vec<SimulatedExpert>,
    alphas: Vec<f64>,
    overhead_secs: f64,
    name: String,
    /// All labeled samples ever seen; weight refits use the whole history so
    /// a handful of noisy crowd labels cannot destroy the calibration.
    validation_buffer: Vec<LabeledImage>,
}

impl BoostedEnsemble {
    /// Creates an ensemble over `members` with uniform initial weights.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<SimulatedExpert>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let n = members.len();
        Self {
            members,
            alphas: vec![1.0; n],
            overhead_secs: DEFAULT_OVERHEAD_SECS,
            name: "Ensemble".to_owned(),
            validation_buffer: Vec::new(),
        }
    }

    /// Overrides the aggregation-overhead delay (seconds per batch).
    pub fn with_overhead_secs(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0, "overhead must be non-negative");
        self.overhead_secs = secs;
        self
    }

    /// The current per-member boosting weights.
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Read access to the members.
    pub fn members(&self) -> &[SimulatedExpert] {
        &self.members
    }

    /// Recomputes the SAMME boosting weights on a labeled validation set.
    ///
    /// Errors are clamped away from 0 and 1 so weights stay finite. Members
    /// performing at or below chance receive weight ~0.
    ///
    /// # Panics
    ///
    /// Panics if `validation` is empty.
    pub fn refit_weights(&mut self, validation: &[LabeledImage]) {
        assert!(!validation.is_empty(), "validation set must be non-empty");
        let k = crowdlearn_dataset::DamageLabel::COUNT as f64;
        self.alphas = self
            .members
            .iter()
            .map(|m| {
                let errors = validation
                    .iter()
                    .filter(|s| m.predict(&s.image).argmax() != s.label)
                    .count();
                let err = (errors as f64 / validation.len() as f64).clamp(0.02, 0.98);
                (((1.0 - err) / err).ln() + (k - 1.0).ln()).max(0.0)
            })
            .collect();
        // Guard against the degenerate all-zero case (all members at chance).
        if self.alphas.iter().all(|a| *a == 0.0) {
            self.alphas.fill(1.0);
        }
    }

    /// Batch prediction over a pre-gathered evidence matrix: every member
    /// predicts the whole batch off the shared matrix, then each image's
    /// member votes are mixed under the alphas in member order — the same
    /// mixture-accumulation order as the scalar `predict`, so the result is
    /// bit-identical to mapping it.
    fn predict_evidence(&self, evidence: &EvidenceMatrix) -> Vec<ClassDistribution> {
        let member_votes: Vec<Vec<ClassDistribution>> = self
            .members
            .iter()
            .map(|m| m.predict_evidence(evidence))
            .collect();
        (0..evidence.len())
            .map(|i| {
                ClassDistribution::weighted_mixture(
                    self.alphas
                        .iter()
                        .copied()
                        .zip(member_votes.iter().map(|votes| &votes[i])),
                )
            })
            .collect()
    }
}

impl Classifier for BoostedEnsemble {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, image: &SyntheticImage) -> ClassDistribution {
        let votes: Vec<ClassDistribution> = self.members.iter().map(|m| m.predict(image)).collect();
        ClassDistribution::weighted_mixture(self.alphas.iter().copied().zip(votes.iter()))
    }

    fn predict_batch(&self, images: &[SyntheticImage]) -> Vec<ClassDistribution> {
        self.predict_evidence(&EvidenceMatrix::from_images(images))
    }

    fn predict_batch_refs(&self, images: &[&SyntheticImage]) -> Vec<ClassDistribution> {
        self.predict_evidence(&EvidenceMatrix::from_refs(images.iter().copied()))
    }

    /// Retrains every member on the samples and refits the boosting weights
    /// on the accumulated labeled history (all samples seen so far), so that
    /// incremental crowd feedback refines rather than replaces the weight
    /// calibration.
    fn retrain(&mut self, samples: &[LabeledImage]) {
        for m in &mut self.members {
            m.retrain(samples);
        }
        self.validation_buffer.extend_from_slice(samples);
        if !self.validation_buffer.is_empty() {
            let buffer = std::mem::take(&mut self.validation_buffer);
            self.refit_weights(&buffer);
            self.validation_buffer = buffer;
        }
    }

    /// Members run concurrently, so the batch delay is the slowest member
    /// plus aggregation overhead (calibrated to Table III).
    fn execution_delay_secs(&self, batch_size: usize, cycle: u64) -> f64 {
        let slowest = self
            .members
            .iter()
            .map(|m| m.execution_delay_secs(batch_size, cycle))
            .fold(0.0, f64::max);
        slowest + self.overhead_secs
    }

    fn training_samples(&self) -> usize {
        self.members
            .iter()
            .map(|m| m.training_samples())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crowdlearn_dataset::{Dataset, DatasetConfig};
    use crowdlearn_metrics::ConfusionMatrix;

    fn trained_ensemble(ds: &Dataset) -> BoostedEnsemble {
        let mut e = BoostedEnsemble::new(profiles::paper_committee(0));
        let train: Vec<_> = ds
            .train()
            .iter()
            .cloned()
            .map(LabeledImage::ground_truth)
            .collect();
        e.retrain(&train);
        e
    }

    fn accuracy(c: &impl Classifier, ds: &Dataset) -> f64 {
        let mut cm = ConfusionMatrix::new(3);
        for img in ds.test() {
            cm.record(img.truth().index(), c.predict(img).argmax().index());
        }
        cm.accuracy()
    }

    #[test]
    fn ensemble_beats_every_member_or_nearly_so() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let ensemble = trained_ensemble(&ds);
        let acc_ensemble = accuracy(&ensemble, &ds);
        // Paper Table II: Ensemble 0.815, best single (DDM) 0.807.
        assert!(
            (acc_ensemble - 0.815).abs() < 0.05,
            "ensemble accuracy {acc_ensemble}"
        );
        for (member, alpha) in ensemble.members().iter().zip(ensemble.alphas()) {
            let acc_m = accuracy(member, &ds);
            assert!(
                acc_ensemble >= acc_m - 0.01,
                "ensemble {acc_ensemble} must not trail member {} at {acc_m} (alpha {alpha})",
                member.name()
            );
        }
    }

    #[test]
    fn stronger_members_get_larger_alphas() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let ensemble = trained_ensemble(&ds);
        let alphas = ensemble.alphas();
        // Order of members: VGG16, BoVW, DDM — DDM strongest, BoVW weakest.
        assert!(alphas[2] > alphas[0], "DDM must outweigh VGG16: {alphas:?}");
        assert!(
            alphas[0] > alphas[1],
            "VGG16 must outweigh BoVW: {alphas:?}"
        );
    }

    #[test]
    fn delay_is_slowest_member_plus_overhead() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let ensemble = trained_ensemble(&ds);
        let mean: f64 = (0..40)
            .map(|c| ensemble.execution_delay_secs(10, c))
            .sum::<f64>()
            / 40.0;
        // Paper Table III: 85.82 s per 10-image cycle.
        assert!((mean - 85.82).abs() / 85.82 < 0.1, "ensemble delay {mean}");
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_is_rejected() {
        BoostedEnsemble::new(vec![]);
    }

    #[test]
    fn refit_on_empty_validation_panics() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut ensemble = trained_ensemble(&ds);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ensemble.refit_weights(&[])));
        assert!(result.is_err());
    }
}
