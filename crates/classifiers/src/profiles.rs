//! Calibrated presets for the paper's three DDA experts.
//!
//! Parameters are calibrated so that, after training on the paper's 560-image
//! training split, test accuracy and execution delay land in the bands of
//! Table II / Table III:
//!
//! | Expert | paper accuracy | paper delay (10-image cycle) |
//! |--------|----------------|------------------------------|
//! | VGG16  | 0.770          | 47.83 s                      |
//! | BoVW   | 0.670          | 37.55 s                      |
//! | DDM    | 0.807          | 52.57 s                      |
//!
//! The calibration tests in this module enforce the bands, so drift in the
//! dataset generator or expert engine is caught immediately.

use crate::{DelayProfile, ExpertProfile, SimulatedExpert};

/// Seed-space tags keeping the three experts' noise streams disjoint even if
/// callers pass the same seed to all three constructors.
const VGG16_TAG: u64 = 0x1661;
const BOVW_TAG: u64 = 0xb0b1;
const DDM_TAG: u64 = 0xdd77;

/// The deep-CNN expert of Nguyen et al. (2017): strong on learned deep
/// texture features, decent overall, fooled by anything that *looks* like
/// damage.
pub fn vgg16(seed: u64) -> SimulatedExpert {
    SimulatedExpert::new(ExpertProfile {
        name: "VGG16".to_owned(),
        family_weights: [0.70, 0.10, 0.20],
        confidence_gain: 4.0,
        perception_noise: 0.235,
        no_damage_bias: 0.12,
        noise_floor: 0.80,
        noise_ceiling: 1.8,
        training_tau: 300.0,
        delay: DelayProfile::new(4.783, 0.08),
        seed: seed.wrapping_mul(0x9e37_79b9).wrapping_add(VGG16_TAG),
    })
}

/// The handcrafted-feature expert of Bosch et al. (2007): SIFT/HOG-style
/// features only, the weakest committee member.
pub fn bovw(seed: u64) -> SimulatedExpert {
    SimulatedExpert::new(ExpertProfile {
        name: "BoVW".to_owned(),
        family_weights: [0.15, 0.70, 0.15],
        confidence_gain: 3.2,
        perception_noise: 0.50,
        no_damage_bias: 0.10,
        noise_floor: 0.82,
        noise_ceiling: 1.7,
        training_tau: 300.0,
        delay: DelayProfile::new(3.755, 0.08),
        seed: seed.wrapping_mul(0x9e37_79b9).wrapping_add(BOVW_TAG),
    })
}

/// The CNN + Grad-CAM damage-heatmap expert of Li et al. (2018): the
/// strongest single model, leaning on spatial/heatmap features; slightly less
/// prone to defaulting to "no damage" on weak evidence.
pub fn ddm(seed: u64) -> SimulatedExpert {
    SimulatedExpert::new(ExpertProfile {
        name: "DDM".to_owned(),
        family_weights: [0.35, 0.10, 0.55],
        confidence_gain: 4.5,
        perception_noise: 0.19,
        no_damage_bias: 0.06,
        noise_floor: 0.78,
        noise_ceiling: 1.8,
        training_tau: 300.0,
        delay: DelayProfile::new(5.257, 0.08),
        seed: seed.wrapping_mul(0x9e37_79b9).wrapping_add(DDM_TAG),
    })
}

/// The paper's committee: VGG16, BoVW and DDM, in that order (Section V-A).
pub fn paper_committee(seed: u64) -> Vec<SimulatedExpert> {
    vec![vgg16(seed), bovw(seed), ddm(seed)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Classifier;
    use crowdlearn_dataset::{Dataset, DatasetConfig, LabeledImage};
    use crowdlearn_metrics::ConfusionMatrix;

    fn trained_accuracy(mut expert: SimulatedExpert, ds: &Dataset) -> f64 {
        let train: Vec<_> = ds
            .train()
            .iter()
            .cloned()
            .map(LabeledImage::ground_truth)
            .collect();
        expert.retrain(&train);
        let mut cm = ConfusionMatrix::new(3);
        for img in ds.test() {
            cm.record(img.truth().index(), expert.predict(img).argmax().index());
        }
        cm.accuracy()
    }

    #[test]
    fn experts_hit_their_table2_accuracy_bands() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let acc_vgg = trained_accuracy(vgg16(0), &ds);
        let acc_bovw = trained_accuracy(bovw(0), &ds);
        let acc_ddm = trained_accuracy(ddm(0), &ds);
        // Paper: VGG16 0.770, BoVW 0.670, DDM 0.807. Allow +-0.05 bands.
        assert!((acc_vgg - 0.770).abs() < 0.05, "VGG16 accuracy {acc_vgg}");
        assert!((acc_bovw - 0.670).abs() < 0.05, "BoVW accuracy {acc_bovw}");
        assert!((acc_ddm - 0.807).abs() < 0.05, "DDM accuracy {acc_ddm}");
        // And the ordering must hold strictly.
        assert!(acc_bovw < acc_vgg && acc_vgg < acc_ddm);
    }

    #[test]
    fn expert_delays_match_table3() {
        let cases = [(vgg16(0), 47.83), (bovw(0), 37.55), (ddm(0), 52.57)];
        for (expert, paper_delay) in cases {
            let mean: f64 = (0..40)
                .map(|c| expert.execution_delay_secs(10, c))
                .sum::<f64>()
                / 40.0;
            assert!(
                (mean - paper_delay).abs() / paper_delay < 0.1,
                "{}: measured {mean}, paper {paper_delay}",
                expert.name()
            );
        }
    }

    #[test]
    fn committee_has_three_distinct_experts() {
        let committee = paper_committee(0);
        assert_eq!(committee.len(), 3);
        let names: Vec<_> = committee.iter().map(|e| e.name().to_owned()).collect();
        assert_eq!(names, ["VGG16", "BoVW", "DDM"]);
    }

    #[test]
    fn committee_members_disagree_somewhere() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let committee: Vec<_> = paper_committee(0)
            .into_iter()
            .map(|mut e| {
                let train: Vec<_> = ds
                    .train()
                    .iter()
                    .cloned()
                    .map(LabeledImage::ground_truth)
                    .collect();
                e.retrain(&train);
                e
            })
            .collect();
        let disagreements = ds
            .test()
            .iter()
            .filter(|img| {
                let labels: Vec<_> = committee.iter().map(|e| e.predict(img).argmax()).collect();
                labels.windows(2).any(|w| w[0] != w[1])
            })
            .count();
        assert!(
            disagreements > 20,
            "QBC needs disagreement; got only {disagreements} disputed images"
        );
    }
}
