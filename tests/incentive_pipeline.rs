//! Integration tests for the incentive pipeline: the bandit against the
//! live platform, budget conservation across layers, and the Figure 8/11
//! orderings at integration scope.

use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem, IncentivePolicyKind};
use crowdlearn_bandit::{BanditConfig, CostedBandit, UcbAlp};
use crowdlearn_crowd::{IncentiveLevel, Platform, PlatformConfig};
use crowdlearn_dataset::{Dataset, DatasetConfig, SensingCycleStream, TemporalContext};
use crowdlearn_metrics::bootstrap_paired_diff_ci;

#[test]
fn adaptive_policy_beats_fixed_with_statistical_confidence() {
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let stream = SensingCycleStream::paper(&dataset);

    let run = |policy: IncentivePolicyKind| {
        let mut system =
            CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper().with_policy(policy));
        let report = system.run(&dataset, &stream);
        report.crowd_delay.samples().to_vec()
    };
    let adaptive = run(IncentivePolicyKind::UcbAlp);
    let fixed = run(IncentivePolicyKind::FixedMax);
    assert_eq!(adaptive.len(), fixed.len());

    // Paired per-cycle bootstrap: the delay reduction must be real, not
    // realization luck.
    let ci = bootstrap_paired_diff_ci(&fixed, &adaptive, 0.95, 2000, 9);
    assert!(
        ci.excludes(0.0) && ci.point > 0.0,
        "fixed-minus-adaptive delay CI must exclude zero: {ci:?}"
    );
}

#[test]
fn the_bandit_learns_the_contextual_structure() {
    // Directly drive UCB-ALP against the platform and verify it pays more in
    // the incentive-sensitive day contexts than at night — the learned
    // policy the paper describes ("CrowdLearn would provide higher
    // incentives [when] the crowd is less responsive").
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let mut platform = Platform::new(PlatformConfig::paper().with_seed(0x1bd));
    let config = BanditConfig::new(TemporalContext::COUNT, IncentiveLevel::costs(), 1000.0, 200)
        .with_context_distribution(vec![0.25; TemporalContext::COUNT]);
    let mut bandit = UcbAlp::new(config, 5);

    // Warm up.
    let mut i = 0usize;
    for _ in 0..10 {
        for ctx in TemporalContext::ALL {
            for level in IncentiveLevel::ALL {
                let img = &dataset.train()[i % dataset.train().len()];
                i += 1;
                let r = platform.submit(img, level, ctx);
                let payoff = (1.0 - r.completion_delay_secs / 1800.0).clamp(0.0, 1.0);
                bandit.observe(ctx.index(), level.index(), payoff);
            }
        }
    }

    let mut spend = [0.0f64; TemporalContext::COUNT];
    let mut counts = [0usize; TemporalContext::COUNT];
    for round in 0..200usize {
        let ctx = TemporalContext::from_index(round % 4);
        let Some(a) = bandit.select(ctx.index()) else {
            break;
        };
        let level = IncentiveLevel::from_index(a);
        let img = &dataset.test()[round % dataset.test().len()];
        let r = platform.submit(img, level, ctx);
        bandit.observe(
            ctx.index(),
            a,
            (1.0 - r.completion_delay_secs / 1800.0).clamp(0.0, 1.0),
        );
        spend[ctx.index()] += f64::from(level.cents());
        counts[ctx.index()] += 1;
    }
    let mean = |z: usize| spend[z] / counts[z].max(1) as f64;
    let day = 0.5 * (mean(0) + mean(1));
    let night = 0.5 * (mean(2) + mean(3));
    assert!(
        day > 1.5 * night,
        "day spending {day:.1}c must clearly exceed night spending {night:.1}c"
    );
}

#[test]
fn budget_flows_are_conserved_across_system_layers() {
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let stream = SensingCycleStream::paper(&dataset);
    for budget in [150.0, 600.0, 1000.0] {
        let mut system = CrowdLearnSystem::new(
            &dataset,
            CrowdLearnConfig::paper().with_budget_cents(budget),
        );
        let report = system.run(&dataset, &stream);
        // The platform's eval-phase ledger, the report's tally, and the
        // bandit's remaining budget must reconcile exactly.
        assert_eq!(report.spent_cents, system.evaluation_spent_cents());
        let accounted = report.spent_cents as f64 + system.remaining_budget_cents();
        assert!(
            accounted <= budget + 1e-6,
            "spent + remaining ({accounted}) exceeds budget {budget}"
        );
    }
}

#[test]
fn richer_budgets_never_slow_the_crowd_down() {
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let stream = SensingCycleStream::paper(&dataset);
    let mut last_delay = f64::INFINITY;
    for budget in [200.0, 1000.0, 4000.0] {
        let mut system = CrowdLearnSystem::new(
            &dataset,
            CrowdLearnConfig::paper().with_budget_cents(budget),
        );
        let report = system.run(&dataset, &stream);
        let delay = report.mean_crowd_delay_secs().expect("queries issued");
        assert!(
            delay < last_delay * 1.08,
            "budget {budget}: delay {delay} regressed past {last_delay}"
        );
        last_delay = delay;
    }
}
