//! Same-seed-twice regression: the determinism invariant the detlint pass
//! (DESIGN.md "Determinism invariants") exists to protect. Two runs of the
//! same seeded pipeline must produce *byte-identical* reports — not merely
//! equal summary statistics — so that any nondeterministic iteration order,
//! wall-clock read, or entropy-seeded RNG that sneaks past review shows up
//! as a hard test failure, label by label.

use crowdlearn::CrowdLearnConfig;
use crowdlearn_dataset::{Dataset, DatasetConfig, SensingCycleStream};
use crowdlearn_runtime::{
    FleetConfig, FleetOrchestrator, FleetSnapshot, FleetSnapshotError, MetricsTap, ParallelSweep,
    PipelinedSystem, RunBound, RuntimeConfig, RuntimeReport, RuntimeSnapshot, ShardSpec,
    SnapshotError, SweepCheckpoints, WindowPolicy, FLEET_SNAPSHOT_FORMAT_VERSION,
    SNAPSHOT_FORMAT_VERSION,
};

fn dataset(seed: u64) -> Dataset {
    Dataset::generate(&DatasetConfig::paper().with_seed(seed))
}

/// A window-3 runtime with a HIT timeout tight enough that timeouts,
/// escalated reposts, *and* waited-out late answers all occur — so
/// checkpoints cover the full event vocabulary and the reinstated-HIT
/// board state.
fn runtime_config() -> RuntimeConfig {
    RuntimeConfig::paper()
        .with_inflight_window(3)
        .with_hit_timeout(Some(150.0), 2)
}

fn fresh_system(dataset: &Dataset) -> PipelinedSystem {
    PipelinedSystem::new(dataset, CrowdLearnConfig::paper(), runtime_config())
}

fn short_run(seed: u64) -> RuntimeReport {
    let dataset = dataset(seed);
    let stream = SensingCycleStream::new(&dataset, 8, 5);
    let mut system = fresh_system(&dataset);
    system.run(&dataset, &stream)
}

#[test]
fn same_seed_twice_is_byte_identical() {
    let (a, b) = (short_run(7), short_run(7));

    // Byte-for-byte: the full Debug rendering covers every field of the
    // report, every cycle outcome, every per-image label and distribution,
    // and every f64 exactly (Debug prints shortest round-trip form).
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "two same-seed runs rendered different reports"
    );

    // Make the label-level claim explicit too, so a diff pinpoints the
    // first diverging image instead of a megabyte of Debug output.
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(oa, ob, "cycle {} diverged between same-seed runs", oa.cycle);
    }
    assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
    assert_eq!(a.events_processed, b.events_processed);
}

#[test]
fn different_seeds_actually_differ() {
    // Guards the test above against vacuity (e.g. a run that ignores its
    // seed entirely would trivially pass the byte-identity check).
    let (a, b) = (short_run(7), short_run(8));
    assert_ne!(
        format!("{a:?}"),
        format!("{b:?}"),
        "seed must reach the pipeline"
    );
}

#[test]
fn checkpoint_resume_is_byte_identical_at_sampled_event_boundaries() {
    let baseline = short_run(7);
    assert!(
        baseline.timeouts > 0 && baseline.reposts > 0,
        "fixture must exercise the timeout/repost machinery"
    );
    let dataset = dataset(7);
    let stream = SensingCycleStream::new(&dataset, 8, 5);
    let total = baseline.events_processed;

    // Pause at event boundaries spread across the whole run — including
    // before the first event and exactly at the last — serialize through
    // bytes, resume in a fresh system, and finish. Every resumed run must
    // render the byte-identical report.
    let cuts = [0, 1, total / 4, total / 2, (3 * total) / 4, total - 1];
    for cut in cuts {
        let mut system = fresh_system(&dataset);
        let paused = system.run_until(&dataset, &stream, RunBound::Events(cut));
        assert!(
            paused.is_none(),
            "cut {cut} of {total} must pause, not drain"
        );
        let bytes = system
            .snapshot()
            .expect("paper system is checkpointable")
            .to_bytes();
        let snapshot = RuntimeSnapshot::from_bytes(&bytes).expect("frame validates");
        let mut resumed = PipelinedSystem::resume(&snapshot, &stream).expect("payload validates");
        let report = resumed.run(&dataset, &stream);
        assert_eq!(
            format!("{report:?}"),
            format!("{baseline:?}"),
            "resume from event boundary {cut}/{total} diverged"
        );
    }
}

#[test]
fn checkpoint_resume_at_a_virtual_time_boundary() {
    let baseline = short_run(7);
    let dataset = dataset(7);
    let stream = SensingCycleStream::new(&dataset, 8, 5);

    // Pause mid-run at a wall of virtual time instead of an event count.
    let mut system = fresh_system(&dataset);
    let paused = system.run_until(&dataset, &stream, RunBound::VirtualTime(1500.0));
    assert!(
        paused.is_none(),
        "the run extends past 1500 virtual seconds"
    );
    assert!(system.virtual_now_secs().expect("running") <= 1500.0);
    assert!(system.events_processed().expect("running") < baseline.events_processed);

    let snapshot = system.snapshot().expect("checkpointable");
    let mut resumed = PipelinedSystem::resume(&snapshot, &stream).expect("valid");
    let report = resumed.run(&dataset, &stream);
    assert_eq!(format!("{report:?}"), format!("{baseline:?}"));
}

#[test]
fn metrics_tap_replays_byte_identically_across_checkpoint_resume() {
    let dataset = dataset(7);
    let stream = SensingCycleStream::new(&dataset, 8, 5);

    // Uninterrupted tapped run: the report hands the tap back.
    let mut system = fresh_system(&dataset);
    system.attach_metrics_tap(MetricsTap::new());
    let baseline = system.run(&dataset, &stream);
    let baseline_tap = baseline.metrics.as_ref().expect("tap rides the report");
    assert!(
        baseline_tap.records() > 0 && !baseline_tap.crowd_delay().is_empty(),
        "fixture must actually stream metrics"
    );
    // Attaching a tap must observe the run, not perturb it.
    let untapped = short_run(7);
    assert_eq!(baseline.outcomes, untapped.outcomes);
    assert_eq!(baseline.events_processed, untapped.events_processed);

    // Cut the tapped run at event boundaries across the whole run. The tap
    // rides inside the snapshot, so the resumed run continues the metric
    // stream — final tap state and report must be byte-identical.
    let total = baseline.events_processed;
    for cut in [1, total / 3, (2 * total) / 3, total - 1] {
        let mut system = fresh_system(&dataset);
        system.attach_metrics_tap(MetricsTap::new());
        assert!(system
            .run_until(&dataset, &stream, RunBound::Events(cut))
            .is_none());
        let mid_records = system.metrics_tap().expect("tap attached").records();
        let bytes = system.snapshot().expect("checkpointable").to_bytes();
        let snapshot = RuntimeSnapshot::from_bytes(&bytes).expect("frame validates");
        let mut resumed = PipelinedSystem::resume(&snapshot, &stream).expect("payload validates");
        assert_eq!(
            resumed.metrics_tap().expect("tap restored").records(),
            mid_records,
            "resume must restore the tap mid-stream, not restart it"
        );
        let report = resumed.run(&dataset, &stream);
        assert_eq!(
            report.metrics.as_ref().expect("tap rides the report"),
            baseline_tap,
            "tap state diverged after resume from event boundary {cut}/{total}"
        );
        assert_eq!(
            format!("{report:?}"),
            format!("{baseline:?}"),
            "tapped resume from event boundary {cut}/{total} diverged"
        );
    }
}

#[test]
fn sweep_point_resumed_from_auto_snapshot_matches_uninterrupted() {
    // Each sweep point periodically parks a checkpoint in the shared store
    // while running to completion. Resuming a point from its latest stored
    // checkpoint — as a relaunched sweep would after a crash — must finish
    // with the byte-identical report, tap included.
    let seeds: Vec<u64> = vec![7, 8];
    let checkpoints = SweepCheckpoints::new(seeds.len());
    let uninterrupted = ParallelSweep::new(2).run(&seeds, |i, &seed| {
        let dataset = dataset(seed);
        let stream = SensingCycleStream::new(&dataset, 8, 5);
        let mut system = fresh_system(&dataset);
        system.attach_metrics_tap(MetricsTap::new());
        let report = system
            .run_auto_snapshotted(&dataset, &stream, 64, |snap| checkpoints.store(i, snap))
            .expect("paper system is checkpointable");
        (seed, report)
    });

    for (i, (seed, baseline)) in uninterrupted.iter().enumerate() {
        let snapshot = checkpoints
            .latest(i)
            .expect("a multi-hundred-event run stores at least one 64-event checkpoint");
        let dataset = dataset(*seed);
        let stream = SensingCycleStream::new(&dataset, 8, 5);
        let mut resumed = PipelinedSystem::resume(&snapshot, &stream).expect("payload validates");
        let report = resumed.run(&dataset, &stream);
        assert_eq!(
            format!("{report:?}"),
            format!("{baseline:?}"),
            "sweep point {i} (seed {seed}) diverged when resumed from its auto-snapshot"
        );
    }
}

// ---------------------------------------------------------------------------
// Adaptive window controller: determinism and snapshot coverage over a run
// where the controller actually moves the window.

/// An adaptive runtime whose controller is aggressive enough to move on
/// the short 8x5 paper fixture: watch the median delay, widen as soon as
/// it exceeds a quarter of the 600 s cadence with arrivals queued.
fn adaptive_runtime_config() -> RuntimeConfig {
    RuntimeConfig::paper().with_window_policy(WindowPolicy::Adaptive {
        min: 1,
        max: 4,
        percentile: 0.5,
        low_threshold: 0.05,
        high_threshold: 0.25,
        cooldown_cycles: 0,
    })
}

fn adaptive_run(seed: u64) -> RuntimeReport {
    let dataset = dataset(seed);
    let stream = SensingCycleStream::new(&dataset, 8, 5);
    let mut system = PipelinedSystem::new(
        &dataset,
        CrowdLearnConfig::paper(),
        adaptive_runtime_config(),
    );
    system.run(&dataset, &stream)
}

#[test]
fn adaptive_same_seed_twice_is_byte_identical_and_the_window_moves() {
    let (a, b) = (adaptive_run(7), adaptive_run(7));
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "two same-seed adaptive runs rendered different reports"
    );

    // The test is vacuous unless the controller actually moved: the
    // paper's crowd delays dwarf a quarter of the cadence, and a window of
    // 1 queues arrivals immediately, so the window must open up.
    let distinct: std::collections::BTreeSet<usize> = a.window_trajectory.iter().copied().collect();
    assert!(
        distinct.len() > 1,
        "the controller must move on this fixture: {:?}",
        a.window_trajectory
    );
    assert!(
        a.metrics.is_some(),
        "adaptive runs always hand back the controlling tap"
    );
    // The decisions are part of the deterministic surface too.
    assert_eq!(a.window_trajectory, b.window_trajectory);
}

#[test]
fn adaptive_checkpoint_resume_is_byte_identical_at_sampled_event_boundaries() {
    // Snapshot format v4 carries the controller state (effective window,
    // cooldown, last decision, trajectory); resuming mid-run with the
    // controller active must replay the identical report — window moves
    // included — from every sampled boundary.
    let baseline = adaptive_run(7);
    let dataset = dataset(7);
    let stream = SensingCycleStream::new(&dataset, 8, 5);
    let total = baseline.events_processed;

    for cut in [1, total / 4, total / 2, (3 * total) / 4, total - 1] {
        let mut system = PipelinedSystem::new(
            &dataset,
            CrowdLearnConfig::paper(),
            adaptive_runtime_config(),
        );
        assert!(system
            .run_until(&dataset, &stream, RunBound::Events(cut))
            .is_none());
        let window_at_cut = system.effective_window().expect("running");
        let bytes = system.snapshot().expect("checkpointable").to_bytes();
        let snapshot = RuntimeSnapshot::from_bytes(&bytes).expect("frame validates");
        let mut resumed = PipelinedSystem::resume(&snapshot, &stream).expect("payload validates");
        assert_eq!(
            resumed.effective_window().expect("running"),
            window_at_cut,
            "resume must restore the controller's effective window at cut {cut}"
        );
        let report = resumed.run(&dataset, &stream);
        assert_eq!(
            format!("{report:?}"),
            format!("{baseline:?}"),
            "adaptive resume from event boundary {cut}/{total} diverged"
        );
    }
}

/// A 2-shard fleet fixture over distinct disaster seeds, sharing the
/// default pool with the paper budget quota per shard.
fn fleet_fixture(seeds: &[u64]) -> (Vec<Dataset>, Vec<SensingCycleStream>, FleetOrchestrator) {
    let datasets: Vec<Dataset> = seeds.iter().map(|&s| dataset(s)).collect();
    let streams: Vec<SensingCycleStream> = datasets
        .iter()
        .map(|d| SensingCycleStream::new(d, 8, 5))
        .collect();
    let specs: Vec<ShardSpec> = seeds
        .iter()
        .map(|_| ShardSpec::new(CrowdLearnConfig::paper(), runtime_config()))
        .collect();
    let budget = CrowdLearnConfig::paper().budget_cents * seeds.len() as f64;
    let mut fleet = FleetOrchestrator::new(specs, FleetConfig::new(budget), &datasets);
    fleet.attach_metrics_taps();
    (datasets, streams, fleet)
}

#[test]
fn one_shard_fleet_matches_the_bare_runtime_byte_for_byte() {
    // The golden parity claim: a fleet of one — fair-share quota, nobody
    // else on the pool — must be indistinguishable from the standalone
    // pipelined runtime, down to the last bit of every f64.
    let baseline = short_run(7);
    let datasets = vec![dataset(7)];
    let streams = vec![SensingCycleStream::new(&datasets[0], 8, 5)];
    let specs = vec![ShardSpec::new(CrowdLearnConfig::paper(), runtime_config())];
    let mut fleet = FleetOrchestrator::new(
        specs,
        FleetConfig::new(CrowdLearnConfig::paper().budget_cents),
        &datasets,
    );
    assert_eq!(
        fleet.ledger().quota_cents(0).to_bits(),
        CrowdLearnConfig::paper().budget_cents.to_bits(),
        "the lone shard's quota must be the untouched paper budget"
    );
    let report = fleet.run(&datasets, &streams);

    assert_eq!(report.shards.len(), 1);
    assert_eq!(
        format!("{:?}", report.shards[0]),
        format!("{baseline:?}"),
        "a 1-shard fleet diverged from the bare pipelined runtime"
    );
    assert_eq!(report.contention.waits_applied, 0);
    assert_eq!(report.contention.total_wait_secs, 0.0);
    assert!(report.contention.posts > 0);
    assert_eq!(
        report.ledger.spent_cents(0),
        report.shards[0]
            .outcomes
            .iter()
            .map(|o| o.spent_cents)
            .sum::<u64>(),
        "the fleet ledger must agree with the shard's own spend"
    );
}

#[test]
fn fleet_same_seeds_twice_is_byte_identical_and_contention_is_real() {
    let (datasets, streams, mut fleet_a) = fleet_fixture(&[7, 8]);
    let a = fleet_a.run(&datasets, &streams);
    let (_, _, mut fleet_b) = fleet_fixture(&[7, 8]);
    let b = fleet_b.run(&datasets, &streams);
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "two same-seed fleet runs rendered different reports"
    );

    // The shared pool must actually couple the shards: cross-stream
    // contention defers completions, so shard 7's report differs from its
    // uncontended standalone run.
    assert!(a.contention.waits_applied > 0, "no queue waits applied");
    assert!(a.contention.total_wait_secs > 0.0);
    assert!(a.contention.peak_busy_workers > 0);
    let solo = short_run(7);
    assert_ne!(
        format!("{:?}", a.shards[0].outcomes),
        format!("{:?}", solo.outcomes),
        "a contended shard must not match its uncontended solo run"
    );

    // Per-shard attribution and the rollup sketch cover the whole fleet.
    for (i, shard) in a.shards.iter().enumerate() {
        assert_eq!(
            a.ledger.spent_cents(i),
            shard.outcomes.iter().map(|o| o.spent_cents).sum::<u64>(),
            "shard {i} ledger spend diverged from its outcomes"
        );
        assert_eq!(
            a.ledger.spent_cents(i),
            fleet_a.shard_usage(i).spent_cents,
            "shard {i} ledger spend diverged from its platform attribution"
        );
        assert!(fleet_a.shard_usage(i).worker_seconds > 0.0);
        assert!(a.ledger.spent_cents(i) as f64 <= a.ledger.quota_cents(i));
    }
    let rollup = a.rollup_crowd_delay.as_ref().expect("taps were attached");
    let per_shard: u64 = a
        .shards
        .iter()
        .map(|s| {
            s.metrics
                .as_ref()
                .expect("tap rides the report")
                .crowd_delay()
                .len()
        })
        .sum();
    assert_eq!(
        rollup.len(),
        per_shard,
        "rollup must merge every shard's sketch"
    );
}

#[test]
fn fleet_snapshot_resume_is_byte_identical_at_sampled_event_boundaries() {
    let (datasets, streams, mut fleet) = fleet_fixture(&[7, 8]);
    let baseline = fleet.run(&datasets, &streams);
    let total = baseline.events_processed;
    assert!(
        baseline.contention.waits_applied > 0,
        "fixture must checkpoint under real contention"
    );

    // Pause at global event boundaries spread across the merged timeline —
    // including before the first event — serialize through bytes, resume,
    // finish, compare byte-for-byte.
    let cuts = [0, 1, total / 4, total / 2, (3 * total) / 4, total - 1];
    for cut in cuts {
        let (_, _, mut fleet) = fleet_fixture(&[7, 8]);
        let paused = fleet.run_until(&datasets, &streams, RunBound::Events(cut));
        assert!(
            paused.is_none(),
            "cut {cut} of {total} must pause, not drain"
        );
        let bytes = fleet
            .snapshot()
            .expect("paper fleet is checkpointable")
            .to_bytes();
        let snapshot = FleetSnapshot::from_bytes(&bytes).expect("frame validates");
        let mut resumed =
            FleetOrchestrator::resume(&snapshot, &streams).expect("payload validates");
        let report = resumed.run(&datasets, &streams);
        assert_eq!(
            format!("{report:?}"),
            format!("{baseline:?}"),
            "fleet resume from event boundary {cut}/{total} diverged"
        );
    }
}

#[test]
fn heterogeneous_fleet_tap_grids_are_rejected_up_front() {
    use crowdlearn_runtime::MetricsTapConfig;

    // Per-shard delay grids must agree for the fleet's crowd-delay rollup
    // to merge; a mismatched configuration is refused at attach time, with
    // the offending shard named, instead of aborting at report time.
    let (datasets, streams, mut fleet) = fleet_fixture(&[7, 8]);
    let narrow = MetricsTapConfig {
        delay_ceiling_secs: 3600.0,
        delay_bins: 512,
    };
    let err = fleet
        .attach_metrics_tap_configs(&[MetricsTapConfig::paper(), narrow])
        .expect_err("mismatched grids must be rejected");
    assert_eq!(err.shard, 1);
    assert_eq!(err.mismatch.expected, (0.0, 7200.0, 1024));
    assert_eq!(err.mismatch.found, (0.0, 3600.0, 512));

    // The rejection must not have disturbed the taps the fixture attached:
    // the run still produces a mergeable rollup.
    let mut matched = fleet;
    matched
        .attach_metrics_tap_configs(&[narrow, narrow])
        .expect("matching custom grids attach fine");
    let report = matched.run(&datasets, &streams);
    let rollup = report
        .rollup_crowd_delay
        .as_ref()
        .expect("homogeneous custom grids roll up");
    assert_eq!(rollup.grid(), (0.0, 3600.0, 512));
    assert!(!rollup.is_empty(), "rollup must absorb real delay samples");
}

#[test]
fn fleet_shards_run_their_own_window_policies_deterministically() {
    // One shard on the static paper window, one on an adaptive controller:
    // policies are per-shard state, so a mixed fleet must stay
    // same-seed-reproducible and resume byte-identically mid-run.
    let mixed_fleet = |datasets: &[Dataset]| {
        let specs = vec![
            ShardSpec::new(CrowdLearnConfig::paper(), runtime_config()),
            ShardSpec::new(CrowdLearnConfig::paper(), adaptive_runtime_config()),
        ];
        let budget = CrowdLearnConfig::paper().budget_cents * 2.0;
        let mut fleet = FleetOrchestrator::new(specs, FleetConfig::new(budget), datasets);
        fleet.attach_metrics_taps();
        fleet
    };
    let datasets = vec![dataset(7), dataset(8)];
    let streams: Vec<SensingCycleStream> = datasets
        .iter()
        .map(|d| SensingCycleStream::new(d, 8, 5))
        .collect();

    let baseline = mixed_fleet(&datasets).run(&datasets, &streams);
    let again = mixed_fleet(&datasets).run(&datasets, &streams);
    assert_eq!(
        format!("{baseline:?}"),
        format!("{again:?}"),
        "two same-seed mixed-policy fleet runs rendered different reports"
    );
    assert_eq!(
        baseline.shards[0].window_trajectory,
        vec![3; 8],
        "the static shard's window must not move"
    );
    assert!(
        baseline.shards[1].window_trajectory.iter().any(|&w| w != 1),
        "the adaptive shard's controller must move: {:?}",
        baseline.shards[1].window_trajectory
    );

    // Mid-run resume with one controller active.
    let total = baseline.events_processed;
    let mut fleet = mixed_fleet(&datasets);
    assert!(fleet
        .run_until(&datasets, &streams, RunBound::Events(total / 2))
        .is_none());
    let bytes = fleet.snapshot().expect("checkpointable").to_bytes();
    let snapshot = FleetSnapshot::from_bytes(&bytes).expect("frame validates");
    let mut resumed = FleetOrchestrator::resume(&snapshot, &streams).expect("payload validates");
    let report = resumed.run(&datasets, &streams);
    assert_eq!(
        format!("{report:?}"),
        format!("{baseline:?}"),
        "mixed-policy fleet resume diverged"
    );
}

#[test]
fn fleet_snapshot_rejects_tampering_and_mismatched_shard_sets() {
    let (datasets, streams, mut fleet) = fleet_fixture(&[7, 8]);
    assert!(fleet
        .run_until(&datasets, &streams, RunBound::Events(60))
        .is_none());
    let bytes = fleet.snapshot().expect("checkpointable").to_bytes();

    let mut wrong_version = bytes.clone();
    wrong_version[8] ^= 0x40;
    assert!(matches!(
        FleetSnapshot::from_bytes(&wrong_version),
        Err(FleetSnapshotError::VersionMismatch { .. })
    ));

    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    assert_eq!(
        FleetSnapshot::from_bytes(&corrupt),
        Err(FleetSnapshotError::ChecksumMismatch)
    );

    // Resuming a 2-shard fleet against one stream is refused before any
    // shard state is rebuilt.
    let snapshot = FleetSnapshot::from_bytes(&bytes).expect("untampered frame validates");
    assert!(matches!(
        FleetOrchestrator::resume(&snapshot, &streams[..1]),
        Err(FleetSnapshotError::ShardCountMismatch {
            expected: 2,
            found: 1
        })
    ));
}

#[test]
fn snapshot_rejects_tampering_and_mismatched_streams() {
    let dataset = dataset(7);
    let stream = SensingCycleStream::new(&dataset, 8, 5);
    let mut system = fresh_system(&dataset);
    assert!(system
        .run_until(&dataset, &stream, RunBound::Events(40))
        .is_none());
    let bytes = system.snapshot().expect("checkpointable").to_bytes();

    // Version drift must be detected before any payload is trusted.
    let mut wrong_version = bytes.clone();
    wrong_version[8] ^= 0x40;
    assert!(matches!(
        RuntimeSnapshot::from_bytes(&wrong_version),
        Err(SnapshotError::VersionMismatch { .. })
    ));

    // A flipped payload bit fails the checksum.
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    assert_eq!(
        RuntimeSnapshot::from_bytes(&corrupt),
        Err(SnapshotError::ChecksumMismatch)
    );

    // Resuming against a stream with a different cycle count is refused.
    let snapshot = RuntimeSnapshot::from_bytes(&bytes).expect("untampered frame validates");
    let short_stream = SensingCycleStream::new(&dataset, 5, 5);
    assert!(matches!(
        PipelinedSystem::resume(&snapshot, &short_stream),
        Err(SnapshotError::CycleCountMismatch {
            expected: 8,
            found: 5
        })
    ));
}

/// Forward compatibility: a frame stamped with a *future* format version —
/// one written by a newer build whose payload layout this build cannot know —
/// must come back as a typed `VersionMismatch` carrying the found version,
/// never a panic or a silent misparse of the unknown payload.
#[test]
fn snapshots_reject_future_format_versions_with_typed_errors() {
    let dataset = dataset(7);
    let stream = SensingCycleStream::new(&dataset, 8, 5);
    let mut system = fresh_system(&dataset);
    assert!(system
        .run_until(&dataset, &stream, RunBound::Events(40))
        .is_none());
    let mut bytes = system.snapshot().expect("checkpointable").to_bytes();
    // The u32 version field sits right after the 8-byte magic.
    let future = SNAPSHOT_FORMAT_VERSION + 1;
    bytes[8..12].copy_from_slice(&future.to_le_bytes());
    assert_eq!(
        RuntimeSnapshot::from_bytes(&bytes),
        Err(SnapshotError::VersionMismatch { found: future })
    );

    let (datasets, streams, mut fleet) = fleet_fixture(&[7, 8]);
    assert!(fleet
        .run_until(&datasets, &streams, RunBound::Events(60))
        .is_none());
    let mut bytes = fleet.snapshot().expect("checkpointable").to_bytes();
    let future = FLEET_SNAPSHOT_FORMAT_VERSION + 1;
    bytes[8..12].copy_from_slice(&future.to_le_bytes());
    assert!(matches!(
        FleetSnapshot::from_bytes(&bytes),
        Err(FleetSnapshotError::VersionMismatch { found }) if found == future
    ));
}

// ---------------------------------------------------------------------------
// Fault injection: the empty-plan golden pin, faulted-run determinism, the
// mid-outage checkpoint, per-shard fleet plans, and a seeded corruption
// sweep over both snapshot codecs.
// ---------------------------------------------------------------------------

use crowdlearn_runtime::{BreakerConfig, BreakerState, FaultEpisode, FaultPlan};

/// A mid-run fault scenario for the 8-cycle fixture (period 600 s): a
/// platform outage across cycles 2-3, worker attrition through the
/// recovery, answer losses near the tail, and a budget shock inside the
/// outage.
fn fault_plan() -> FaultPlan {
    FaultPlan::new(
        0xFA017,
        vec![
            FaultEpisode::PlatformOutage {
                from_secs: 900.0,
                until_secs: 2_100.0,
            },
            FaultEpisode::WorkerAttrition {
                fraction: 0.5,
                from_secs: 2_100.0,
                until_secs: 3_300.0,
            },
            FaultEpisode::AnswerLoss {
                prob: 0.5,
                from_secs: 3_300.0,
                until_secs: 4_500.0,
            },
            FaultEpisode::BudgetShock {
                at_secs: 1_500.0,
                cents: 40.0,
            },
        ],
    )
}

fn faulted_config() -> RuntimeConfig {
    runtime_config().with_faults(fault_plan())
}

fn faulted_run(seed: u64) -> RuntimeReport {
    let dataset = dataset(seed);
    let stream = SensingCycleStream::new(&dataset, 8, 5);
    let mut system = PipelinedSystem::new(&dataset, CrowdLearnConfig::paper(), faulted_config());
    system.attach_metrics_tap(MetricsTap::new());
    system.run(&dataset, &stream)
}

#[test]
fn empty_fault_plan_is_byte_identical_to_the_default_config() {
    // The golden pin for the fault machinery's zero-cost claim: a config
    // that *names* a fault plan — nonzero seed, custom breaker tuning, but
    // zero episodes — schedules no fault events and draws nothing, so the
    // whole run renders byte-identically to the default config's.
    let baseline = short_run(7);
    let dataset = dataset(7);
    let stream = SensingCycleStream::new(&dataset, 8, 5);
    let runtime = runtime_config()
        .with_faults(FaultPlan::new(0xDEAD_BEEF, Vec::new()))
        .with_breaker(BreakerConfig {
            base_backoff_cycles: 2,
            max_backoff_cycles: 32,
        });
    let mut system = PipelinedSystem::new(&dataset, CrowdLearnConfig::paper(), runtime);
    let report = system.run(&dataset, &stream);
    assert_eq!(
        format!("{report:?}"),
        format!("{baseline:?}"),
        "an empty fault plan must not perturb the run"
    );
    assert_eq!(report.posts_rejected, 0);
    assert_eq!(report.degraded_cycles, 0);
}

#[test]
fn faulted_same_seed_twice_is_byte_identical_and_the_ladder_engages() {
    let (a, b) = (faulted_run(7), faulted_run(7));
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "two same-seed faulted runs rendered different reports"
    );

    // The scenario must actually bite: refused posts, degraded cycles, and
    // a report that differs from the fault-free run.
    assert!(a.posts_rejected > 0, "the outage must refuse posts");
    assert!(a.degraded_cycles > 0, "some cycle must degrade to AI-only");
    assert_ne!(
        format!("{:?}", a.outcomes),
        format!("{:?}", short_run(7).outcomes),
        "the fault plan must perturb the run it covers"
    );

    // The metrics tap saw every transition: all four episodes started, the
    // three windowed ones ended, and the breaker trip plus each probe's
    // Open->HalfProbe->(Closed|Open) dance left at least three records.
    let tap = a.metrics.as_ref().expect("tap was attached");
    assert_eq!(tap.faults_started(), 4);
    assert_eq!(tap.faults_ended(), 3);
    assert!(tap.breaker_transitions() >= 3);
    assert_eq!(tap.degraded_cycles(), a.degraded_cycles);
    assert!(tap.hits_abandoned() <= tap.hits_timed_out());
}

#[test]
fn mid_outage_checkpoint_resume_is_byte_identical() {
    let baseline = faulted_run(7);
    let dataset = dataset(7);
    let stream = SensingCycleStream::new(&dataset, 8, 5);

    // Pause inside the outage window (900-2100 s), with the breaker open
    // and cycles parked or degraded, and carry the whole degradation
    // ladder through bytes.
    let mut system = PipelinedSystem::new(&dataset, CrowdLearnConfig::paper(), faulted_config());
    system.attach_metrics_tap(MetricsTap::new());
    let paused = system.run_until(&dataset, &stream, RunBound::VirtualTime(1_450.0));
    assert!(paused.is_none(), "the run extends past the outage");
    assert_eq!(
        system.breaker_state(),
        Some(BreakerState::Open),
        "the checkpoint must land with the breaker open"
    );

    let bytes = system.snapshot().expect("checkpointable").to_bytes();
    let snapshot = RuntimeSnapshot::from_bytes(&bytes).expect("frame validates");
    let mut resumed = PipelinedSystem::resume(&snapshot, &stream).expect("payload validates");
    assert_eq!(resumed.breaker_state(), Some(BreakerState::Open));
    let report = resumed.run(&dataset, &stream);
    assert_eq!(
        format!("{report:?}"),
        format!("{baseline:?}"),
        "mid-outage resume diverged"
    );
}

#[test]
fn fleet_shards_run_their_own_fault_plans_and_resume_mid_outage() {
    // Shard 0 rides the outage scenario, shard 1 stays clean: faults are
    // per-shard state, and the shared pool must not leak one shard's
    // outage into the other's crowd path.
    let seeds = [7u64, 8];
    let datasets: Vec<Dataset> = seeds.iter().map(|&s| dataset(s)).collect();
    let streams: Vec<SensingCycleStream> = datasets
        .iter()
        .map(|d| SensingCycleStream::new(d, 8, 5))
        .collect();
    let specs = || {
        vec![
            ShardSpec::new(CrowdLearnConfig::paper(), faulted_config()),
            ShardSpec::new(CrowdLearnConfig::paper(), runtime_config()),
        ]
    };
    let budget = CrowdLearnConfig::paper().budget_cents * 2.0;
    let mut fleet = FleetOrchestrator::new(specs(), FleetConfig::new(budget), &datasets);
    fleet.attach_metrics_taps();
    let baseline = fleet.run(&datasets, &streams);
    assert!(
        baseline.shards[0].posts_rejected > 0,
        "the faulted shard must hit its outage"
    );
    assert_eq!(
        baseline.shards[1].posts_rejected, 0,
        "the clean shard must never see a refusal"
    );

    // Checkpoint the fleet mid-outage and finish from bytes.
    let total = baseline.events_processed;
    for cut in [total / 3, total / 2] {
        let mut fleet = FleetOrchestrator::new(specs(), FleetConfig::new(budget), &datasets);
        fleet.attach_metrics_taps();
        assert!(fleet
            .run_until(&datasets, &streams, RunBound::Events(cut))
            .is_none());
        let bytes = fleet.snapshot().expect("checkpointable").to_bytes();
        let snapshot = FleetSnapshot::from_bytes(&bytes).expect("frame validates");
        let mut resumed =
            FleetOrchestrator::resume(&snapshot, &streams).expect("payload validates");
        let report = resumed.run(&datasets, &streams);
        assert_eq!(
            format!("{report:?}"),
            format!("{baseline:?}"),
            "fleet resume from event boundary {cut}/{total} diverged"
        );
    }
}

/// SplitMix64 — a tiny seeded position generator for the corruption sweep.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a-64, re-derived in the test so the sweep can forge valid
/// checksums over corrupted payloads (mirrors the runtime's frame hash).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[test]
fn snapshot_decode_survives_a_seeded_corruption_sweep() {
    // A mid-faulted-run checkpoint covers the richest payload: in-flight
    // HITs (some lost), an open breaker, parked cycles, fault counters.
    let dataset = dataset(7);
    let stream = SensingCycleStream::new(&dataset, 8, 5);
    let mut system = PipelinedSystem::new(&dataset, CrowdLearnConfig::paper(), faulted_config());
    system.attach_metrics_tap(MetricsTap::new());
    assert!(system
        .run_until(&dataset, &stream, RunBound::VirtualTime(1_450.0))
        .is_none());
    let bytes = system.snapshot().expect("checkpointable").to_bytes();
    const HEADER: usize = 8 + 4 + 8 + 8;

    let mut rng = 0xC0FFEEu64;

    // Raw single-bit flips anywhere in the frame: the magic, version,
    // length, or checksum check must catch every one with a typed error.
    for _ in 0..512 {
        let pos = (splitmix64(&mut rng) as usize) % bytes.len();
        let bit = (splitmix64(&mut rng) % 8) as u32;
        let mut evil = bytes.clone();
        evil[pos] ^= 1 << bit;
        assert!(
            RuntimeSnapshot::from_bytes(&evil).is_err(),
            "flipped bit {bit} at byte {pos} slipped through the frame checks"
        );
    }

    // Truncations at every kind of boundary: strictly shorter frames must
    // always fail typed, never panic on a short read.
    for _ in 0..128 {
        let cut = (splitmix64(&mut rng) as usize) % bytes.len();
        assert!(
            RuntimeSnapshot::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes slipped through the frame checks"
        );
    }

    // Checksum-repaired payload flips: the frame validates, so the payload
    // decoders themselves face the corruption. Resume must return a typed
    // result — `Ok` when the flip lands in a don't-care bit, a
    // `SnapshotError` otherwise — and never panic.
    let mut rejected = 0u32;
    for _ in 0..256 {
        let pos = HEADER + (splitmix64(&mut rng) as usize) % (bytes.len() - HEADER);
        let bit = (splitmix64(&mut rng) % 8) as u32;
        let mut evil = bytes.clone();
        evil[pos] ^= 1 << bit;
        let sum = fnv1a64(&evil[HEADER..]);
        evil[20..28].copy_from_slice(&sum.to_le_bytes());
        let snapshot = RuntimeSnapshot::from_bytes(&evil).expect("repaired frame validates");
        if PipelinedSystem::resume(&snapshot, &stream).is_err() {
            rejected += 1;
        }
    }
    assert!(
        rejected > 0,
        "the sweep must actually reach the payload validators"
    );
}

#[test]
fn fleet_snapshot_decode_survives_a_seeded_corruption_sweep() {
    let seeds = [7u64, 8];
    let datasets: Vec<Dataset> = seeds.iter().map(|&s| dataset(s)).collect();
    let streams: Vec<SensingCycleStream> = datasets
        .iter()
        .map(|d| SensingCycleStream::new(d, 8, 5))
        .collect();
    let specs = vec![
        ShardSpec::new(CrowdLearnConfig::paper(), faulted_config()),
        ShardSpec::new(CrowdLearnConfig::paper(), runtime_config()),
    ];
    let budget = CrowdLearnConfig::paper().budget_cents * 2.0;
    let mut fleet = FleetOrchestrator::new(specs, FleetConfig::new(budget), &datasets);
    fleet.attach_metrics_taps();
    assert!(fleet
        .run_until(&datasets, &streams, RunBound::Events(300))
        .is_none());
    let bytes = fleet.snapshot().expect("checkpointable").to_bytes();
    const HEADER: usize = 8 + 4 + 8 + 8;

    let mut rng = 0xF1EE7u64;
    for _ in 0..512 {
        let pos = (splitmix64(&mut rng) as usize) % bytes.len();
        let bit = (splitmix64(&mut rng) % 8) as u32;
        let mut evil = bytes.clone();
        evil[pos] ^= 1 << bit;
        assert!(
            FleetSnapshot::from_bytes(&evil).is_err(),
            "flipped bit {bit} at byte {pos} slipped through the fleet frame checks"
        );
    }
    for _ in 0..128 {
        let cut = (splitmix64(&mut rng) as usize) % bytes.len();
        assert!(
            FleetSnapshot::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes slipped through the fleet frame checks"
        );
    }
    let mut rejected = 0u32;
    for _ in 0..256 {
        let pos = HEADER + (splitmix64(&mut rng) as usize) % (bytes.len() - HEADER);
        let bit = (splitmix64(&mut rng) % 8) as u32;
        let mut evil = bytes.clone();
        evil[pos] ^= 1 << bit;
        let sum = fnv1a64(&evil[HEADER..]);
        evil[20..28].copy_from_slice(&sum.to_le_bytes());
        let snapshot = FleetSnapshot::from_bytes(&evil).expect("repaired frame validates");
        if FleetOrchestrator::resume(&snapshot, &streams).is_err() {
            rejected += 1;
        }
    }
    assert!(
        rejected > 0,
        "the sweep must actually reach the fleet payload validators"
    );
}
