//! Same-seed-twice regression: the determinism invariant the detlint pass
//! (DESIGN.md "Determinism invariants") exists to protect. Two runs of the
//! same seeded pipeline must produce *byte-identical* reports — not merely
//! equal summary statistics — so that any nondeterministic iteration order,
//! wall-clock read, or entropy-seeded RNG that sneaks past review shows up
//! as a hard test failure, label by label.

use crowdlearn::CrowdLearnConfig;
use crowdlearn_dataset::{Dataset, DatasetConfig, SensingCycleStream};
use crowdlearn_runtime::{PipelinedSystem, RuntimeConfig, RuntimeReport};

fn short_run(seed: u64) -> RuntimeReport {
    let dataset = Dataset::generate(&DatasetConfig::paper().with_seed(seed));
    let stream = SensingCycleStream::new(&dataset, 8, 5);
    let mut system = PipelinedSystem::new(
        &dataset,
        CrowdLearnConfig::paper(),
        RuntimeConfig::paper().with_inflight_window(3),
    );
    system.run(&dataset, &stream)
}

#[test]
fn same_seed_twice_is_byte_identical() {
    let (a, b) = (short_run(7), short_run(7));

    // Byte-for-byte: the full Debug rendering covers every field of the
    // report, every cycle outcome, every per-image label and distribution,
    // and every f64 exactly (Debug prints shortest round-trip form).
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "two same-seed runs rendered different reports"
    );

    // Make the label-level claim explicit too, so a diff pinpoints the
    // first diverging image instead of a megabyte of Debug output.
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(oa, ob, "cycle {} diverged between same-seed runs", oa.cycle);
    }
    assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
    assert_eq!(a.events_processed, b.events_processed);
}

#[test]
fn different_seeds_actually_differ() {
    // Guards the test above against vacuity (e.g. a run that ignores its
    // seed entirely would trivially pass the byte-identity check).
    let (a, b) = (short_run(7), short_run(8));
    assert_ne!(
        format!("{a:?}"),
        format!("{b:?}"),
        "seed must reach the pipeline"
    );
}
