//! Cross-crate property-based tests (proptest) over the public APIs.

use crowdlearn::{Committee, CrowdLearnConfig};
use crowdlearn_bandit::{
    BanditConfig, CostedBandit, EpsilonGreedy, FixedPolicy, RandomPolicy, UcbAlp,
};
use crowdlearn_classifiers::{profiles, BoostedEnsemble, ClassDistribution, Classifier};
use crowdlearn_dataset::{
    DamageLabel, Dataset, DatasetConfig, LabeledImage, SensingCycleStream, SyntheticImage,
};
use crowdlearn_metrics::{wilcoxon_signed_rank, ConfusionMatrix, RocCurve, SummaryStats};
use crowdlearn_runtime::{MetricsTap, PipelinedSystem, RuntimeConfig, WindowPolicy};
use crowdlearn_truth::{Aggregator, Annotation, DawidSkeneEm, MajorityVoting, WorkerId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn class_distributions_from_any_logits_are_normalized(
        a in -50.0f64..50.0, b in -50.0f64..50.0, c in -50.0f64..50.0
    ) {
        let d = ClassDistribution::from_logits([a, b, c]);
        let sum: f64 = d.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(d.probs().iter().all(|p| (0.0..=1.0).contains(p)));
        prop_assert!(d.entropy() >= -1e-12);
        prop_assert!(d.entropy() <= (DamageLabel::COUNT as f64).ln() + 1e-12);
    }

    #[test]
    fn symmetric_kl_is_symmetric_and_nonnegative(
        a in 0.01f64..10.0, b in 0.01f64..10.0, c in 0.01f64..10.0,
        x in 0.01f64..10.0, y in 0.01f64..10.0, z in 0.01f64..10.0
    ) {
        let p = ClassDistribution::from_weights([a, b, c]);
        let q = ClassDistribution::from_weights([x, y, z]);
        let pq = p.symmetric_kl(&q);
        let qp = q.symmetric_kl(&p);
        prop_assert!(pq >= -1e-12);
        prop_assert!((pq - qp).abs() < 1e-9);
    }

    #[test]
    fn committee_mixture_is_permutation_invariant(
        w1 in 0.1f64..5.0, w2 in 0.1f64..5.0, w3 in 0.1f64..5.0,
        l1 in -5.0f64..5.0, l2 in -5.0f64..5.0, l3 in -5.0f64..5.0
    ) {
        let d1 = ClassDistribution::from_logits([l1, l2, l3]);
        let d2 = ClassDistribution::from_logits([l2, l3, l1]);
        let d3 = ClassDistribution::from_logits([l3, l1, l2]);
        let forward = ClassDistribution::weighted_mixture([(w1, &d1), (w2, &d2), (w3, &d3)]);
        let backward = ClassDistribution::weighted_mixture([(w3, &d3), (w1, &d1), (w2, &d2)]);
        for (a, b) in forward.probs().iter().zip(backward.probs()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn confusion_matrix_accuracy_is_bounded(
        pairs in proptest::collection::vec((0usize..3, 0usize..3), 1..200)
    ) {
        let cm = ConfusionMatrix::from_pairs(3, pairs.iter().copied());
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        prop_assert!((0.0..=1.0).contains(&cm.macro_f1()));
        prop_assert_eq!(cm.total(), pairs.len() as u64);
    }

    #[test]
    fn roc_auc_is_bounded_and_curve_monotone(
        scores in proptest::collection::vec(0.0f64..1.0, 4..100),
        flip in proptest::collection::vec(any::<bool>(), 4..100)
    ) {
        let n = scores.len().min(flip.len());
        let roc = RocCurve::from_binary_scores(&scores[..n], &flip[..n]);
        prop_assert!((0.0..=1.0).contains(&roc.auc()));
        let pts = roc.points();
        for w in pts.windows(2) {
            prop_assert!(w[1].fpr >= w[0].fpr - 1e-12);
            prop_assert!(w[1].tpr >= w[0].tpr - 1e-12);
        }
    }

    #[test]
    fn summary_stats_mean_within_min_max(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..100)
    ) {
        let stats: SummaryStats = xs.iter().copied().collect();
        let mean = stats.mean();
        prop_assert!(mean >= stats.min().unwrap() - 1e-9);
        prop_assert!(mean <= stats.max().unwrap() + 1e-9);
        prop_assert!(stats.std_dev() >= 0.0);
    }

    #[test]
    fn wilcoxon_p_value_is_a_probability(
        xs in proptest::collection::vec(0.0f64..1.0, 5..40),
        ys in proptest::collection::vec(0.0f64..1.0, 5..40)
    ) {
        let n = xs.len().min(ys.len());
        let out = wilcoxon_signed_rank(&xs[..n], &ys[..n]);
        prop_assert!((0.0..=1.0).contains(&out.p_value));
        // Rank sums must total n_eff (n_eff + 1) / 2.
        let ne = out.n_effective as f64;
        prop_assert!((out.w_plus + out.w_minus - ne * (ne + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn bandit_policies_never_overspend(
        budget in 1.0f64..60.0,
        seed in 0u64..1000,
        rounds in 1u64..80
    ) {
        let mk = || BanditConfig::new(2, vec![1.0, 3.0, 7.0], budget, rounds);
        let policies: Vec<Box<dyn CostedBandit>> = vec![
            Box::new(UcbAlp::new(mk(), seed)),
            Box::new(EpsilonGreedy::new(mk(), 0.2, seed)),
            Box::new(FixedPolicy::max_affordable(mk())),
            Box::new(RandomPolicy::new(mk(), seed)),
        ];
        for mut policy in policies {
            let mut spent = 0.0;
            for r in 0..rounds {
                if let Some(a) = policy.select((r % 2) as usize) {
                    spent += [1.0, 3.0, 7.0][a];
                    policy.observe((r % 2) as usize, a, 0.5);
                }
            }
            prop_assert!(spent <= budget + 1e-6, "{} overspent: {spent} > {budget}", policy.name());
            prop_assert!((policy.remaining_budget() - (budget - spent)).abs() < 1e-6);
        }
    }

    #[test]
    fn majority_voting_and_ds_produce_normalized_estimates(
        labels in proptest::collection::vec((0u32..8, 0usize..6, 0usize..3), 1..120)
    ) {
        let annotations: Vec<Annotation> = labels
            .iter()
            .map(|&(w, item, label)| Annotation::new(WorkerId(w), item, label))
            .collect();
        for aggregator in [&mut MajorityVoting as &mut dyn Aggregator,
                           &mut DawidSkeneEm::default() as &mut dyn Aggregator] {
            let estimates = aggregator.aggregate(&annotations, 6, 3);
            prop_assert_eq!(estimates.len(), 6);
            for e in &estimates {
                let sum: f64 = e.distribution.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6);
                prop_assert!(e.label() < 3);
            }
        }
    }

    #[test]
    fn dataset_splits_are_always_disjoint_and_complete(
        seed in 0u64..50,
        total in 30usize..200
    ) {
        let train = total / 2;
        let ds = Dataset::generate(
            &DatasetConfig::paper().with_seed(seed).with_total(total).with_train_count(train),
        );
        prop_assert_eq!(ds.train().len() + ds.test().len(), ds.len());
        let mut ids: Vec<u32> = ds.images().iter().map(|i| i.id().0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), ds.len());
    }
}

/// One dataset shared by the batch-equivalence properties below — dataset
/// generation dominates the per-case cost and the properties only read it.
fn shared_dataset() -> &'static Dataset {
    static DS: std::sync::OnceLock<Dataset> = std::sync::OnceLock::new();
    DS.get_or_init(|| Dataset::generate(&DatasetConfig::paper()))
}

fn assert_distributions_bit_identical(
    batched: &[ClassDistribution],
    scalar: &[ClassDistribution],
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(batched.len(), scalar.len());
    for (b, s) in batched.iter().zip(scalar) {
        for (pb, ps) in b.probs().iter().zip(s.probs()) {
            prop_assert_eq!(pb.to_bits(), ps.to_bits());
        }
    }
    Ok(())
}

// The batch-inference contract (DESIGN.md "Batched committee inference"):
// `predict_batch` / `predict_batch_refs` / `votes_batch` / `entropies_batch`
// are performance paths, never semantic ones — every shipped classifier
// profile, trained or untrained, must reproduce the scalar path bit for bit.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batch_prediction_is_bit_identical_to_scalar_for_every_profile(
        seed in 0u64..500,
        start in 0usize..400,
        len in 1usize..48,
        train in any::<bool>()
    ) {
        let ds = shared_dataset();
        let test = ds.test();
        let start = start % test.len();
        let len = len.min(test.len() - start);
        let batch = &test[start..start + len];
        let refs: Vec<&SyntheticImage> = batch.iter().collect();
        let classifiers: Vec<Box<dyn Classifier>> = vec![
            Box::new(profiles::vgg16(seed)),
            Box::new(profiles::bovw(seed)),
            Box::new(profiles::ddm(seed)),
            Box::new(BoostedEnsemble::new(profiles::paper_committee(seed))),
        ];
        for mut classifier in classifiers {
            if train {
                let samples: Vec<LabeledImage> = ds
                    .train()
                    .iter()
                    .cloned()
                    .map(LabeledImage::ground_truth)
                    .collect();
                classifier.retrain(&samples);
            }
            let scalar: Vec<ClassDistribution> =
                batch.iter().map(|img| classifier.predict(img)).collect();
            assert_distributions_bit_identical(&classifier.predict_batch(batch), &scalar)?;
            assert_distributions_bit_identical(&classifier.predict_batch_refs(&refs), &scalar)?;
        }
    }

    #[test]
    fn committee_batch_votes_and_entropies_are_bit_identical_to_scalar(
        seed in 0u64..500,
        start in 0usize..400,
        len in 1usize..32,
        l0 in 0.0f64..1.0, l1 in 0.0f64..1.0, l2 in 0.0f64..1.0,
        rounds in 0usize..3
    ) {
        let ds = shared_dataset();
        let members: Vec<Box<dyn Classifier>> = profiles::paper_committee(seed)
            .into_iter()
            .map(|e| Box::new(e) as Box<dyn Classifier>)
            .collect();
        let mut committee = Committee::new(members, 0.6);
        for _ in 0..rounds {
            committee.update_weights(&[l0, l1, l2]);
        }
        let test = ds.test();
        let start = start % test.len();
        let len = len.min(test.len() - start);
        let batch: Vec<&SyntheticImage> = test[start..start + len].iter().collect();

        let votes = committee.votes_batch(&batch);
        let entropies = committee.entropies_batch(&batch);
        prop_assert_eq!(votes.len(), batch.len());
        prop_assert_eq!(entropies.len(), batch.len());
        for ((img, image_votes), entropy) in batch.iter().zip(&votes).zip(&entropies) {
            assert_distributions_bit_identical(image_votes, &committee.votes(img))?;
            prop_assert_eq!(entropy.to_bits(), committee.entropy(img).to_bits());
        }
    }
}

// Full closed-loop runs are expensive (committee boot per case), so the
// tap-convergence property uses its own small case budget and a reduced
// bootstrap (fewer CQC training queries, lighter bandit warm-up).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn metrics_tap_agrees_with_the_end_of_run_report(
        seed in 0u64..1000,
        window in 1usize..5,
        with_timeout in any::<bool>()
    ) {
        let dataset = Dataset::generate(&DatasetConfig::paper().with_seed(seed));
        let stream = SensingCycleStream::new(&dataset, 6, 4);
        let mut config = CrowdLearnConfig::paper().with_seed(seed);
        config.cqc_training_queries = 200;
        config.warmup_per_cell = 2;
        let mut runtime = RuntimeConfig::paper().with_inflight_window(window);
        if with_timeout {
            runtime = runtime.with_hit_timeout(Some(150.0), 2);
        }
        let mut system = PipelinedSystem::from_system(
            crowdlearn::CrowdLearnSystem::new(&dataset, config),
            runtime,
        );
        system.attach_metrics_tap(MetricsTap::new());
        let run = system.run(&dataset, &stream);
        let tap = run.metrics.as_ref().expect("tap rides the report");

        // Counters: the streamed view and the end-of-run report must agree
        // exactly — same spend, same timeout/repost telemetry, same number
        // of absorbed answers (the report's per-query delay samples).
        let report = &run.report;
        prop_assert_eq!(tap.spent_cents(), report.spent_cents);
        prop_assert_eq!(tap.hits_timed_out(), run.timeouts);
        prop_assert_eq!(tap.hits_reposted(), run.reposts);
        prop_assert_eq!(tap.cycles_closed(), run.outcomes.len() as u64);
        prop_assert_eq!(tap.crowd_delay().len(), report.query_delay.len() as u64);
        prop_assert_eq!(
            tap.hits_answered() + tap.late_answers(),
            report.query_delay.len() as u64
        );

        // Quantiles: the streaming sketch must converge on the exact
        // order statistics within its grid resolution (no sample clamped,
        // so every estimate is at most one bin width off).
        if !report.query_delay.is_empty() {
            prop_assert_eq!(tap.crowd_delay().clamped(), 0);
            let tolerance = tap.crowd_delay().bin_width();
            for q in [0.1, 0.5, 0.9] {
                let streamed = tap.crowd_delay().quantile(q).expect("non-empty");
                let exact = report.query_delay.quantile(q).expect("non-empty");
                prop_assert!(
                    (streamed - exact).abs() <= tolerance,
                    "q{q}: streamed {streamed} vs exact {exact}, tolerance {tolerance}"
                );
            }
        }
    }

    #[test]
    fn collapsed_adaptive_policy_is_byte_identical_to_static(
        seed in 0u64..1000,
        n in 1usize..4,
        percentile in 0.0f64..1.0,
        cooldown in 0u32..3
    ) {
        // An `Adaptive` policy pinned to `min == max == n` can never move,
        // so the whole run — controller consultations included — must
        // reproduce `Static(n)` byte for byte, whatever thresholds the
        // controller watches. The static run gets the same explicitly
        // attached tap the adaptive run auto-attaches, so the reports'
        // metrics fields compare too.
        let run = |policy: WindowPolicy| {
            let dataset = Dataset::generate(&DatasetConfig::paper().with_seed(seed));
            let stream = SensingCycleStream::new(&dataset, 6, 4);
            let mut config = CrowdLearnConfig::paper().with_seed(seed);
            config.cqc_training_queries = 200;
            config.warmup_per_cell = 2;
            let mut system = PipelinedSystem::from_system(
                crowdlearn::CrowdLearnSystem::new(&dataset, config),
                RuntimeConfig::paper().with_window_policy(policy),
            );
            system.attach_metrics_tap(MetricsTap::new());
            system.run(&dataset, &stream)
        };
        let adaptive = run(WindowPolicy::Adaptive {
            min: n,
            max: n,
            percentile,
            low_threshold: 0.25,
            high_threshold: 0.5,
            cooldown_cycles: cooldown,
        });
        let static_run = run(WindowPolicy::Static(n));
        prop_assert_eq!(&adaptive.window_trajectory, &static_run.window_trajectory);
        prop_assert_eq!(
            format!("{adaptive:?}"),
            format!("{static_run:?}"),
            "a collapsed adaptive range must reproduce Static({}) byte for byte",
            n
        );
    }
}
