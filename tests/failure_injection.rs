//! Failure-injection integration tests: the system must degrade gracefully,
//! never panic, under hostile or degenerate conditions.

use crowdlearn::{CalibratorConfig, CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_classifiers::{profiles, Classifier};
use crowdlearn_crowd::{IncentiveLevel, Platform, PlatformConfig, Worker, WorkerPool};
use crowdlearn_dataset::{
    visual_layout, DamageLabel, Dataset, DatasetConfig, ImageAttribute, ImageId,
    SensingCycleStream, SyntheticImage, TemporalContext,
};
use crowdlearn_truth::WorkerId;

#[test]
fn zero_budget_still_labels_everything() {
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let stream = SensingCycleStream::paper(&dataset);
    let mut system =
        CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper().with_budget_cents(0.0));
    let report = system.run(&dataset, &stream);
    assert_eq!(report.confusion.total(), 400);
    assert_eq!(report.spent_cents, 0);
    assert_eq!(report.queries_issued, 0);
    // Without crowd help, accuracy falls back to committee level.
    assert!(report.accuracy() > 0.7);
}

#[test]
fn all_calibration_disabled_is_a_pure_committee() {
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let stream = SensingCycleStream::paper(&dataset);
    let mut system = CrowdLearnSystem::new(
        &dataset,
        CrowdLearnConfig::paper().with_calibration(CalibratorConfig::disabled()),
    );
    let report = system.run(&dataset, &stream);
    // Queries are still issued (and paid for) but nothing is used.
    assert!(report.spent_cents > 0);
    // Weights must remain uniform.
    for &w in system.committee_weights() {
        assert!((w - 1.0 / 3.0).abs() < 1e-9);
    }
}

#[test]
fn adversarial_worker_pool_degrades_but_does_not_crash() {
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let adversaries: Vec<Worker> = (0..40)
        .map(|i| Worker::from_traits(WorkerId(i), 0.05, 1.0, [1.0; 4]))
        .collect();
    let mut platform = Platform::with_pool(
        PlatformConfig::paper().with_pool_size(40).with_seed(3),
        WorkerPool::from_workers(adversaries),
    );
    // Labels from a hostile crowd are mostly wrong.
    let mut wrong = 0usize;
    let mut total = 0usize;
    for img in dataset.test().iter().take(60) {
        let resp = platform.submit(img, IncentiveLevel::C10, TemporalContext::Evening);
        for r in &resp.responses {
            total += 1;
            wrong += usize::from(r.label != img.truth());
        }
    }
    assert!(wrong as f64 / total as f64 > 0.6);
}

/// Builds a hand-crafted deceptive image (strong fake-severe visuals).
fn handcrafted_fake(id: u32) -> SyntheticImage {
    let mut visual = vec![0.0; visual_layout::VISUAL_DIM];
    for family in 0..visual_layout::FAMILIES {
        for k in 0..visual_layout::BLOCK {
            visual[visual_layout::dim(family, DamageLabel::Severe.index(), k)] = 1.6;
        }
    }
    let mut contextual = vec![0.05; SyntheticImage::CONTEXTUAL_DIM];
    contextual[DamageLabel::NoDamage.index()] = 0.9;
    contextual[DamageLabel::COUNT + 1] = 0.9; // "fake" attribute cue
    SyntheticImage::from_latents(
        ImageId(id),
        DamageLabel::NoDamage,
        ImageAttribute::Fake,
        DamageLabel::Severe,
        false,
        visual,
        contextual,
    )
}

#[test]
fn committee_is_confidently_fooled_by_handcrafted_fakes() {
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let train: Vec<_> = dataset
        .train()
        .iter()
        .cloned()
        .map(crowdlearn_dataset::LabeledImage::ground_truth)
        .collect();
    for mut expert in profiles::paper_committee(1) {
        expert.retrain(&train);
        let vote = expert.predict(&handcrafted_fake(7000));
        assert_eq!(
            vote.argmax(),
            DamageLabel::Severe,
            "{} must read the fake at face value",
            expert.name()
        );
        assert!(vote.max_prob() > 0.8, "{}: {vote}", expert.name());
        // And the entropy must be LOW — the failure QSS's entropy ranking
        // cannot see, motivating epsilon-greedy.
        assert!(
            vote.entropy() < 0.4,
            "{}: entropy {}",
            expert.name(),
            vote.entropy()
        );
    }
}

#[test]
fn single_expert_committee_works() {
    use crowdlearn::Committee;
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let train: Vec<_> = dataset
        .train()
        .iter()
        .cloned()
        .map(crowdlearn_dataset::LabeledImage::ground_truth)
        .collect();
    let mut solo = profiles::ddm(0);
    solo.retrain(&train);
    let committee = Committee::new(vec![Box::new(solo)], 0.3);
    assert_eq!(committee.len(), 1);
    let vote = committee.committee_vote(&dataset.test()[0]);
    assert!((vote.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert_eq!(committee.weights(), &[1.0]);
}

#[test]
fn tiny_stream_and_tiny_dataset_work() {
    let dataset = Dataset::generate(
        &DatasetConfig::paper()
            .with_total(120)
            .with_train_count(60)
            .with_seed(5),
    );
    let stream = SensingCycleStream::new(&dataset, 4, 5);
    let mut system = CrowdLearnSystem::new(
        &dataset,
        CrowdLearnConfig {
            horizon_queries: 8,
            budget_cents: 64.0,
            cqc_training_queries: 60,
            warmup_per_cell: 1,
            ..CrowdLearnConfig::paper()
        },
    );
    let report = system.run(&dataset, &stream);
    assert_eq!(report.confusion.total(), 20);
}
