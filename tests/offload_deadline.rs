//! Integration coverage for `offload_deadline_secs` (paper Definition 1):
//! a crowd answer that misses the actionability deadline must still feed
//! MIC's learning paths — Hedge weight updates and committee retraining —
//! while never overriding the AI label of its image.

use crowdlearn::{CalibratorConfig, CrowdLearnConfig, CrowdLearnSystem, CycleOutcome};
use crowdlearn_dataset::{Dataset, DatasetConfig, SensingCycleStream};

fn run_outcomes(dataset: &Dataset, config: CrowdLearnConfig) -> (Vec<CycleOutcome>, Vec<f64>) {
    let stream = SensingCycleStream::paper(dataset);
    let mut system = CrowdLearnSystem::new(dataset, config);
    let outcomes: Vec<CycleOutcome> = stream
        .cycles()
        .iter()
        .map(|cycle| system.run_cycle(cycle, dataset))
        .collect();
    let weights = system.committee_weights().to_vec();
    (outcomes, weights)
}

#[test]
fn late_answers_update_hedge_weights_but_never_override_ai_labels() {
    let dataset = Dataset::generate(&DatasetConfig::paper());

    // A 1-second deadline no crowd answer can meet: every answer is late.
    let (late, late_weights) = run_outcomes(
        &dataset,
        CrowdLearnConfig::paper().with_offload_deadline_secs(Some(1.0)),
    );
    // No deadline: every answer offloads its image (the paper evaluation).
    let (unlimited, unlimited_weights) = run_outcomes(&dataset, CrowdLearnConfig::paper());
    // Offloading disabled outright, no deadline: the label-path reference.
    let mut no_offload_config = CrowdLearnConfig::paper();
    no_offload_config.calibration = CalibratorConfig {
        offload: false,
        ..CalibratorConfig::paper()
    };
    let (no_offload, no_offload_weights) = run_outcomes(&dataset, no_offload_config);

    // 1. Labels: an impossible deadline is label-equivalent to disabling
    //    offloading — late answers never replace the AI label.
    for (late_outcome, reference) in late.iter().zip(&no_offload) {
        for (a, b) in late_outcome.images.iter().zip(&reference.images) {
            assert_eq!(
                a.predicted, b.predicted,
                "cycle {} image {:?}: a late answer overrode the AI label",
                late_outcome.cycle, a.image
            );
        }
    }

    // 2. Learning: the deadline gates *offloading only*. The same answers
    //    are absorbed either way, so the Hedge weights land exactly where
    //    the unlimited run's do — and far from uniform.
    assert_eq!(late_weights, unlimited_weights);
    assert_eq!(late_weights, no_offload_weights);
    let uniform = 1.0 / late_weights.len() as f64;
    assert!(
        late_weights.iter().any(|w| (w - uniform).abs() > 0.01),
        "weights never moved off uniform: {late_weights:?}"
    );

    // 3. The deadline had bite: with offloading live, some queried images
    //    carry crowd labels that differ from the AI labels.
    let overridden = unlimited
        .iter()
        .zip(&late)
        .flat_map(|(u, l)| u.images.iter().zip(&l.images))
        .filter(|(u, l)| {
            assert_eq!(u.image, l.image);
            u.queried && u.predicted != l.predicted
        })
        .count();
    assert!(
        overridden > 0,
        "offloading never changed a label; the deadline test is vacuous"
    );

    // 4. Late answers are still paid for.
    let late_spent: u64 = late.iter().map(|o| o.spent_cents).sum();
    let unlimited_spent: u64 = unlimited.iter().map(|o| o.spent_cents).sum();
    assert_eq!(late_spent, unlimited_spent);
    assert!(late_spent > 0);
}
