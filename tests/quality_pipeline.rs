//! Integration tests for the quality-control pipeline: CQC against the
//! aggregation baselines on live platform traffic, plus probabilistic
//! quality of the distributions the schemes emit.

use crowdlearn::{QualityController, QueryFeatures};
use crowdlearn_crowd::{IncentiveLevel, Platform, PlatformConfig, QueryResponse};
use crowdlearn_dataset::{DamageLabel, Dataset, DatasetConfig, TemporalContext};
use crowdlearn_metrics::{brier_score, mcnemar_test, CalibrationReport};
use crowdlearn_truth::{Aggregator, Annotation, DawidSkeneEm, MajorityVoting, OneCoinEm};

fn gather(
    platform: &mut Platform,
    images: &[crowdlearn_dataset::SyntheticImage],
    repeat: usize,
) -> Vec<(QueryResponse, DamageLabel)> {
    (0..images.len() * repeat)
        .map(|i| {
            let img = &images[i % images.len()];
            let ctx = TemporalContext::from_index(i % TemporalContext::COUNT);
            (platform.submit(img, IncentiveLevel::C6, ctx), img.truth())
        })
        .collect()
}

#[test]
fn cqc_beats_every_aggregation_baseline_significantly() {
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let mut platform = Platform::new(PlatformConfig::paper().with_seed(0x9a11));
    let train = gather(&mut platform, dataset.train(), 2);
    // Two passes over the test split (fresh worker draws each time) for
    // enough discordant pairs to power the McNemar comparisons.
    let eval = gather(&mut platform, dataset.test(), 2);

    let mut cqc = QualityController::paper();
    cqc.train(&train);
    let cqc_correct: Vec<bool> = eval
        .iter()
        .map(|(resp, truth)| cqc.truthful_label(resp) == *truth)
        .collect();

    let annotations: Vec<Annotation> = eval
        .iter()
        .enumerate()
        .flat_map(|(item, (resp, _))| {
            resp.responses
                .iter()
                .map(move |r| Annotation::new(r.worker, item, r.label.index()))
        })
        .collect();
    let truths: Vec<usize> = eval.iter().map(|(_, t)| t.index()).collect();

    let baselines: Vec<Box<dyn Aggregator>> = vec![
        Box::new(MajorityVoting),
        Box::new(DawidSkeneEm::default()),
        Box::new(OneCoinEm::default()),
    ];
    for mut baseline in baselines {
        let estimates = baseline.aggregate(&annotations, eval.len(), DamageLabel::COUNT);
        let baseline_correct: Vec<bool> = estimates
            .iter()
            .zip(&truths)
            .map(|(e, &t)| e.label() == t)
            .collect();
        let out = mcnemar_test(&cqc_correct, &baseline_correct);
        assert!(
            out.a_only > out.b_only,
            "CQC must win the discordant items vs {}: {out:?}",
            baseline.name()
        );
        assert!(
            out.significant(0.05),
            "CQC's lead over {} must be significant: p = {}",
            baseline.name(),
            out.p_value
        );
    }
}

#[test]
fn cqc_distributions_are_sharper_and_better_calibrated_than_voting() {
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let mut platform = Platform::new(PlatformConfig::paper().with_seed(0x9a22));
    let train = gather(&mut platform, dataset.train(), 2);
    let eval = gather(&mut platform, dataset.test(), 1);

    let mut cqc = QualityController::paper();
    cqc.train(&train);
    let untrained = QualityController::paper(); // = majority voting fallback

    let collect = |qc: &QualityController| -> (Vec<Vec<f64>>, Vec<usize>) {
        let scores = eval
            .iter()
            .map(|(resp, _)| qc.infer(resp).probs().to_vec())
            .collect();
        let truths = eval.iter().map(|(_, t)| t.index()).collect();
        (scores, truths)
    };
    let (cqc_scores, truths) = collect(&cqc);
    let (vote_scores, _) = collect(&untrained);

    let cqc_brier = brier_score(&cqc_scores, &truths);
    let vote_brier = brier_score(&vote_scores, &truths);
    assert!(
        cqc_brier < vote_brier,
        "CQC Brier {cqc_brier:.3} must beat voting {vote_brier:.3}"
    );

    let cqc_ece = CalibrationReport::from_scores(&cqc_scores, &truths, 10).ece();
    assert!(
        cqc_ece < 0.15,
        "CQC must be reasonably calibrated: ECE {cqc_ece:.3}"
    );
}

#[test]
fn cqc_features_are_stable_across_identical_responses() {
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let mut platform = Platform::new(PlatformConfig::paper().with_seed(0x9a33));
    let resp = platform.submit(
        &dataset.test()[0],
        IncentiveLevel::C8,
        TemporalContext::Midnight,
    );
    assert_eq!(QueryFeatures::extract(&resp), QueryFeatures::extract(&resp));
    assert_eq!(QueryFeatures::extract(&resp).len(), QueryFeatures::DIM);
}

#[test]
fn repeated_queries_of_the_same_image_vary_but_agree_on_easy_truth() {
    // Resubmitting an easy image yields different worker draws but the same
    // aggregated answer — the redundancy CQC exploits.
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let easy = dataset
        .test()
        .iter()
        .find(|i| i.attribute() == crowdlearn_dataset::ImageAttribute::Plain && !i.is_ambiguous())
        .expect("plain image exists");
    let mut platform = Platform::new(PlatformConfig::paper().with_seed(0x9a44));
    let cqc = QualityController::paper(); // voting fallback is fine here
    let mut labels = Vec::new();
    for _ in 0..8 {
        let resp = platform.submit(easy, IncentiveLevel::C6, TemporalContext::Evening);
        labels.push(cqc.truthful_label(&resp));
    }
    let agreeing = labels.iter().filter(|&&l| l == easy.truth()).count();
    assert!(
        agreeing >= 7,
        "easy image must aggregate stably: {labels:?}"
    );
}
