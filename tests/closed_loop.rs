//! Cross-crate integration tests: the full closed loop reproduces the
//! paper's headline orderings.

use crowdlearn::baselines::{run_ai_only, HybridAl, HybridConfig, HybridPara};
use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_classifiers::{profiles, BoostedEnsemble, Classifier};
use crowdlearn_dataset::{Dataset, DatasetConfig, LabeledImage, SensingCycleStream};

fn fixture() -> (Dataset, SensingCycleStream) {
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let stream = SensingCycleStream::paper(&dataset);
    (dataset, stream)
}

fn train_labels(dataset: &Dataset) -> Vec<LabeledImage> {
    dataset
        .train()
        .iter()
        .cloned()
        .map(LabeledImage::ground_truth)
        .collect()
}

#[test]
fn table2_ordering_holds_end_to_end() {
    let (dataset, stream) = fixture();
    let train = train_labels(&dataset);

    let mut system = CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper());
    let crowdlearn = system.run(&dataset, &stream);

    let mut vgg = profiles::vgg16(0);
    vgg.retrain(&train);
    let vgg_report = run_ai_only(&mut vgg, &dataset, &stream);

    let mut bovw = profiles::bovw(0);
    bovw.retrain(&train);
    let bovw_report = run_ai_only(&mut bovw, &dataset, &stream);

    let mut ddm = profiles::ddm(0);
    ddm.retrain(&train);
    let ddm_report = run_ai_only(&mut ddm, &dataset, &stream);

    let mut ensemble = BoostedEnsemble::new(profiles::paper_committee(0));
    ensemble.retrain(&train);
    let ensemble_report = run_ai_only(&mut ensemble, &dataset, &stream);

    // The paper's central ordering: CrowdLearn leads everything; the AI-only
    // ladder is BoVW < VGG16 < DDM <= Ensemble.
    assert!(
        crowdlearn.accuracy() > ensemble_report.accuracy(),
        "CrowdLearn {} must beat Ensemble {}",
        crowdlearn.accuracy(),
        ensemble_report.accuracy()
    );
    assert!(ensemble_report.accuracy() > vgg_report.accuracy());
    assert!(ddm_report.accuracy() > vgg_report.accuracy());
    assert!(vgg_report.accuracy() > bovw_report.accuracy());
}

#[test]
fn crowdlearn_beats_both_hybrids_on_accuracy_and_delay() {
    let (dataset, stream) = fixture();
    let train = train_labels(&dataset);

    let mut system = CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper());
    let crowdlearn = system.run(&dataset, &stream);

    let mut ensemble = BoostedEnsemble::new(profiles::paper_committee(0));
    ensemble.retrain(&train);
    let mut para = HybridPara::new(Box::new(ensemble), HybridConfig::paper());
    let para_report = para.run(&dataset, &stream);

    let mut ensemble2 = BoostedEnsemble::new(profiles::paper_committee(0));
    ensemble2.retrain(&train);
    let mut al = HybridAl::new(Box::new(ensemble2), HybridConfig::paper());
    let al_report = al.run(&dataset, &stream);

    assert!(crowdlearn.accuracy() > para_report.accuracy());
    assert!(crowdlearn.accuracy() > al_report.accuracy());

    // And the adaptive incentive policy must be faster than both fixed ones
    // (Table III: ~35% reduction).
    let cl_delay = crowdlearn.mean_crowd_delay_secs().expect("queries issued");
    let para_delay = para_report.mean_crowd_delay_secs().expect("queries issued");
    let al_delay = al_report.mean_crowd_delay_secs().expect("queries issued");
    assert!(
        cl_delay < 0.85 * para_delay,
        "CrowdLearn delay {cl_delay} vs Hybrid-Para {para_delay}"
    );
    assert!(
        cl_delay < 0.85 * al_delay,
        "CrowdLearn delay {cl_delay} vs Hybrid-AL {al_delay}"
    );
}

#[test]
fn evaluation_spend_matches_report_and_budget() {
    let (dataset, stream) = fixture();
    let mut system = CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper());
    let report = system.run(&dataset, &stream);
    assert_eq!(u64::from(report.spent_cents > 0), 1);
    assert_eq!(report.spent_cents, system.evaluation_spent_cents());
    assert!(
        report.spent_cents as f64 + system.remaining_budget_cents()
            <= CrowdLearnConfig::paper().budget_cents + 1e-6
    );
}

#[test]
fn every_streamed_image_receives_exactly_one_final_label() {
    let (dataset, stream) = fixture();
    let mut system = CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper());
    let mut seen = std::collections::BTreeSet::new();
    for cycle in &stream {
        let outcome = system.run_cycle(cycle, &dataset);
        assert_eq!(outcome.images.len(), cycle.image_ids.len());
        for img in &outcome.images {
            assert!(seen.insert(img.image), "duplicate label for {}", img.image);
            let probs = img.distribution.probs();
            assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
    assert_eq!(seen.len(), 400);
}

#[test]
fn full_runs_are_reproducible() {
    let (dataset, stream) = fixture();
    let a = CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper()).run(&dataset, &stream);
    let b = CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper()).run(&dataset, &stream);
    assert_eq!(a.confusion, b.confusion);
    assert_eq!(a.spent_cents, b.spent_cents);
    assert_eq!(a.scores, b.scores);
}
