//! Integration-test and example host for the CrowdLearn reproduction workspace.
//!
//! The library target exists so `tests/` and `examples/` at the repository
//! root can share the workspace dependency graph; all functionality lives in
//! the `crates/` members.
#![forbid(unsafe_code)]
