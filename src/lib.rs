//! Integration-test and example host for the CrowdLearn reproduction workspace.
//!
//! The library target exists so `tests/` and `examples/` at the repository
//! root can share the workspace dependency graph; all functionality lives in
//! the `crates/` members. The one exception is [`scenarios`]: the tiny
//! dataset/stream/config builders the runnable examples share, factored here
//! so each example opens with its scenario in one line instead of repeating
//! the same generation boilerplate.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Shared example scenarios: every runnable example under `examples/` is a
/// view over one of these fixtures, so the numbers printed by different
/// examples are directly comparable.
pub mod scenarios {
    use crowdlearn_dataset::{Dataset, DatasetConfig, SensingCycleStream};
    use crowdlearn_runtime::RuntimeConfig;

    /// The paper's full evaluation scenario: the 960-image Ecuador
    /// earthquake stand-in streamed as 40 sensing cycles of 10 images.
    pub fn paper() -> (Dataset, SensingCycleStream) {
        let dataset = Dataset::generate(&DatasetConfig::paper());
        let stream = SensingCycleStream::paper(&dataset);
        (dataset, stream)
    }

    /// The paper scenario with mid-stream family drift enabled — the
    /// distribution-shift fixture `drift_adaptation` adapts to.
    pub fn paper_with_drift() -> (Dataset, SensingCycleStream) {
        let dataset = Dataset::generate(&DatasetConfig::paper().with_family_drift(true));
        let stream = SensingCycleStream::paper(&dataset);
        (dataset, stream)
    }

    /// A short runtime demo: a seeded paper-shaped dataset streamed as 10
    /// cycles of 5 images — small enough that event-loop examples
    /// (checkpointing, metrics, fleets) finish in seconds.
    pub fn demo(seed: u64) -> (Dataset, SensingCycleStream) {
        let dataset = Dataset::generate(&DatasetConfig::paper().with_seed(seed));
        let stream = SensingCycleStream::new(&dataset, 10, 5);
        (dataset, stream)
    }

    /// The runtime configuration the event-loop demos share: a window of 3
    /// with a HIT timeout tight enough that timeouts, escalated reposts and
    /// late answers all occur, exercising the full event vocabulary.
    pub fn demo_runtime() -> RuntimeConfig {
        RuntimeConfig::paper()
            .with_inflight_window(3)
            .with_hit_timeout(Some(150.0), 2)
    }
}
