//! Streaming metrics tap: watch the pipelined runtime live, between
//! `run_until` slices, and render a text dashboard from the tap's rolling
//! state.
//!
//! ```text
//! cargo run --release --example metrics_tap
//! ```
//!
//! The end-of-run `RuntimeReport` shows delay and spend only after the
//! fact. The tap streams the same quantities *during* the run: the driver
//! feeds it one record per event-boundary transition, and the tap folds
//! them into rolling crowd-delay quantiles (overall and per temporal
//! context), spend pacing against the budget ledger, and occupancy gauges
//! — all deterministic, all O(1) memory, and all carried inside runtime
//! snapshots.

use crowdlearn::CrowdLearnConfig;
use crowdlearn_dataset::TemporalContext;
use crowdlearn_runtime::{MetricsTap, PipelinedSystem, RunBound};
use crowdlearn_suite::scenarios;

fn main() {
    let (dataset, stream) = scenarios::demo(7);
    let runtime = scenarios::demo_runtime();

    let mut system = PipelinedSystem::new(&dataset, CrowdLearnConfig::paper(), runtime);
    system.attach_metrics_tap(MetricsTap::new());

    // Drive the run in slices, polling the tap between them — exactly what
    // a live dashboard (or an adaptive-window controller) would do.
    println!("    events |  virtual s | win | in-flight | p50 delay | p90 delay |  spent");
    println!("   --------+------------+-----+-----------+-----------+-----------+-------");
    let mut report = None;
    while report.is_none() {
        report = system.run_until(&dataset, &stream, RunBound::Events(40));
        let tap = system
            .metrics_tap()
            .or_else(|| report.as_ref().and_then(|r| r.metrics.as_ref()))
            .expect("tap attached for the whole run");
        let fmt_q = |q: f64| match tap.crowd_delay().quantile(q) {
            Some(v) => format!("{v:7.0} s"),
            None => "      — ".to_string(),
        };
        println!(
            "   {:7} | {:8.0} s | {:3} | {:9} | {} | {} | {:4} ¢",
            tap.records(),
            tap.last_at_secs(),
            tap.window_occupancy(),
            tap.hits_in_flight(),
            fmt_q(0.5),
            fmt_q(0.9),
            tap.spent_cents(),
        );
    }
    let report = report.expect("loop exits with the report");
    let tap = report.metrics.as_ref().expect("tap rides the report");

    // End-of-run dashboard: the streamed state, per temporal context.
    println!("\ncrowd delay by temporal context (streamed quantiles):");
    for context in TemporalContext::ALL {
        let sketch = tap.crowd_delay_in(context);
        match (sketch.quantile(0.5), sketch.quantile(0.9)) {
            (Some(p50), Some(p90)) => println!(
                "   {context:?}: n={}, p50 {p50:.0} s, p90 {p90:.0} s",
                sketch.len()
            ),
            _ => println!("   {context:?}: no queries"),
        }
    }
    println!(
        "\nspend: {} ¢ over {:.0} virtual s ({:.1} ¢/h), budget left {:.0} ¢",
        tap.spent_cents(),
        tap.last_at_secs(),
        tap.spend_rate_cents_per_hour().unwrap_or(0.0),
        tap.remaining_budget_cents().unwrap_or(f64::NAN),
    );
    println!(
        "peaks: window {} cycles, {} HITs in flight, queue depth {}",
        tap.peak_window_occupancy(),
        tap.peak_hits_in_flight(),
        tap.peak_queue_depth(),
    );

    // The streamed view and the end-of-run report agree exactly.
    assert_eq!(tap.spent_cents(), report.report.spent_cents);
    assert_eq!(tap.hits_timed_out(), report.timeouts);
    assert_eq!(
        tap.crowd_delay().len(),
        report.report.query_delay.len() as u64
    );
    println!("\nstreamed totals match the end-of-run report ✓");
}
