//! Drift adaptation: watch MIC's expert weights track a shifting domain.
//!
//! ```text
//! cargo run --release --example drift_adaptation
//! ```
//!
//! The dataset's feature-family drift makes the deep-texture evidence fade
//! and the handcrafted evidence strengthen over the disaster's 40 cycles.
//! VGG16 (deep-heavy) degrades; BoVW (handcrafted-heavy) improves. This
//! example prints the committee's Hedge weights every few cycles so the
//! adaptation is visible, then compares the final accuracy against a frozen
//! uniform-weight committee.

use crowdlearn::{CalibratorConfig, CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_suite::scenarios;

fn main() {
    let (dataset, stream) = scenarios::paper_with_drift();

    let mut system = CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper());
    let (report, trace) = system.run_traced(&dataset, &stream);
    println!("cycle  context    VGG16   BoVW    DDM   acc(8-cycle window)");
    let windowed = trace.windowed_accuracy(8);
    for (c, smoothed) in trace.cycles().iter().zip(&windowed) {
        if c.cycle % 5 == 0 || c.cycle == stream.cycles().len() - 1 {
            println!(
                "{:>5}  {:<9} {:>6.3} {:>6.3} {:>6.3} {:>8.3}",
                c.cycle,
                c.context.to_string(),
                c.committee_weights[0],
                c.committee_weights[1],
                c.committee_weights[2],
                smoothed
            );
        }
    }
    let dynamic_accuracy = report.accuracy();

    // The same run with the weight update disabled.
    let mut frozen = CrowdLearnSystem::new(
        &dataset,
        CrowdLearnConfig::paper().with_calibration(CalibratorConfig {
            update_weights: false,
            ..CalibratorConfig::paper()
        }),
    );
    let frozen_report = frozen.run(&dataset, &stream);

    println!();
    println!("dynamic weights accuracy: {dynamic_accuracy:.3}");
    println!("frozen weights accuracy:  {:.3}", frozen_report.accuracy());
    println!(
        "adaptation gain:          {:+.3}",
        dynamic_accuracy - frozen_report.accuracy()
    );
}
