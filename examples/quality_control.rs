//! Quality control: compare every label-aggregation scheme on the same
//! stream of noisy crowd responses.
//!
//! ```text
//! cargo run --release --example quality_control
//! ```
//!
//! This example exercises the `crowdlearn-truth` baselines (majority voting,
//! Dawid-Skene EM, worker filtering) against the trained CQC module from the
//! core crate, on identical worker responses — the comparison behind the
//! paper's Table I. It also shows how each scheme copes with an injected
//! population of adversarial workers.

use crowdlearn::QualityController;
use crowdlearn_crowd::{
    IncentiveLevel, Platform, PlatformConfig, QueryResponse, Worker, WorkerPool,
};
use crowdlearn_dataset::{DamageLabel, Dataset, TemporalContext};
use crowdlearn_suite::scenarios;
use crowdlearn_truth::{
    Aggregator, Annotation, DawidSkeneEm, MajorityVoting, WorkerFiltering, WorkerId,
};

fn main() {
    let (dataset, _stream) = scenarios::paper();

    println!("=== normal worker population ===");
    let mut platform = Platform::new(PlatformConfig::paper().with_seed(5));
    compare(&dataset, &mut platform);

    // Failure injection: a pool where a third of the workers are random
    // clickers. Voting suffers; reliability-aware schemes recover more.
    println!();
    println!("=== 33% adversarial workers ===");
    let mut workers: Vec<Worker> = WorkerPool::generate(200, 9).workers().to_vec();
    for (i, w) in workers.iter_mut().enumerate() {
        if i % 3 == 0 {
            *w = Worker::from_traits(w.id(), 0.15, w.speed_factor(), [1.0; 4]);
        }
    }
    let mut hostile = Platform::with_pool(
        PlatformConfig::paper().with_pool_size(200).with_seed(10),
        WorkerPool::from_workers(workers),
    );
    compare(&dataset, &mut hostile);
}

fn compare(dataset: &Dataset, platform: &mut Platform) {
    // Gather training responses (for CQC) and evaluation responses.
    let gather = |platform: &mut Platform,
                  images: &[crowdlearn_dataset::SyntheticImage]|
     -> Vec<(QueryResponse, DamageLabel)> {
        images
            .iter()
            .enumerate()
            .map(|(i, img)| {
                let ctx = TemporalContext::from_index(i % TemporalContext::COUNT);
                (platform.submit(img, IncentiveLevel::C6, ctx), img.truth())
            })
            .collect()
    };
    let train = gather(platform, dataset.train());
    let eval = gather(platform, dataset.test());

    let mut cqc = QualityController::paper();
    cqc.train(&train);
    let cqc_acc = eval
        .iter()
        .filter(|(resp, truth)| cqc.truthful_label(resp) == *truth)
        .count() as f64
        / eval.len() as f64;

    // Flatten to annotations for the aggregation baselines.
    let annotations: Vec<Annotation> = eval
        .iter()
        .enumerate()
        .flat_map(|(item, (resp, _))| {
            resp.responses
                .iter()
                .map(move |r| Annotation::new(r.worker, item, r.label.index()))
        })
        .collect();
    let truths: Vec<usize> = eval.iter().map(|(_, t)| t.index()).collect();

    let accuracy_of = |aggregator: &mut dyn Aggregator| {
        let estimates = aggregator.aggregate(&annotations, eval.len(), DamageLabel::COUNT);
        estimates
            .iter()
            .zip(&truths)
            .filter(|(e, &t)| e.label() == t)
            .count() as f64
            / truths.len() as f64
    };

    println!("{:<22} {:>9}", "scheme", "accuracy");
    println!("{:<22} {:>9.3}", "CQC (GBDT + evidence)", cqc_acc);
    println!(
        "{:<22} {:>9.3}",
        "majority voting",
        accuracy_of(&mut MajorityVoting)
    );
    println!(
        "{:<22} {:>9.3}",
        "Dawid-Skene EM",
        accuracy_of(&mut DawidSkeneEm::default())
    );
    // Give filtering a history pass first (it is useless without history).
    let mut filtering = WorkerFiltering::paper_default();
    let _ = filtering.aggregate(&annotations, eval.len(), DamageLabel::COUNT);
    println!(
        "{:<22} {:>9.3}",
        "worker filtering",
        accuracy_of(&mut filtering)
    );

    // Peek at what filtering learned.
    let blacklisted: Vec<WorkerId> = platform
        .pool()
        .workers()
        .iter()
        .map(|w| w.id())
        .filter(|&id| filtering.is_blacklisted(id))
        .collect();
    println!("workers blacklisted by filtering: {}", blacklisted.len());
}
