//! Earthquake response walkthrough: follow individual sensing cycles of a
//! simulated disaster event and watch the crowd-AI loop make decisions.
//!
//! ```text
//! cargo run --release --example earthquake_response
//! ```
//!
//! The scenario mirrors the paper's motivating deployment: imagery streams
//! in after an earthquake; an AI committee triages it; the most uncertain
//! images go to the crowd; CQC distills truthful labels; emergency-response
//! dispatch decisions are made from the merged output. The example prints a
//! per-cycle trace for the first few cycles — which images were escalated to
//! humans, what the committee believed, what the crowd corrected — then
//! summarizes how many dispatch decisions the crowd fixed over the whole
//! event.

use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_dataset::DamageLabel;
use crowdlearn_suite::scenarios;

fn main() {
    let (dataset, stream) = scenarios::paper();
    let mut system = CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper());

    let mut dispatched_correctly = 0usize;
    let mut dispatched_total = 0usize;
    let mut crowd_fixed = 0usize;
    let mut crowd_broke = 0usize;

    for cycle in &stream {
        let outcome = system.run_cycle(cycle, &dataset);
        let verbose = cycle.index < 3;
        if verbose {
            println!(
                "--- cycle {} ({}), {} images, {} queried, crowd delay {} ---",
                cycle.index,
                cycle.context,
                outcome.images.len(),
                outcome.images.iter().filter(|i| i.queried).count(),
                outcome
                    .crowd_delay_secs
                    .map(|d| format!("{d:.0} s"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        for img in &outcome.images {
            let record = dataset.image(img.image).expect("image from this dataset");
            if verbose {
                println!(
                    "  {} [{}{}] truth={:<15} -> {:<15} {} {}",
                    img.image,
                    record.attribute(),
                    if record.is_ambiguous() {
                        ", ambiguous"
                    } else {
                        ""
                    },
                    record.truth().to_string(),
                    img.predicted.to_string(),
                    if img.queried { "(crowd)" } else { "(AI)" },
                    if img.predicted == img.truth {
                        "ok"
                    } else {
                        "WRONG"
                    },
                );
            }

            // Dispatch policy: severe damage sends a rescue team.
            let should_dispatch = record.truth() == DamageLabel::Severe;
            let dispatches = img.predicted == DamageLabel::Severe;
            dispatched_total += 1;
            dispatched_correctly += usize::from(should_dispatch == dispatches);
            if img.queried {
                // Would the AI alone have gotten it right?
                // (The committee vote before offloading is not stored in the
                // outcome, so compare against the queried flag: images the
                // crowd answered count as fixed when correct.)
                if img.predicted == img.truth {
                    crowd_fixed += 1;
                } else {
                    crowd_broke += 1;
                }
            }
        }
    }

    println!();
    println!("=== Event summary ({} cycles) ===", stream.cycles().len());
    println!(
        "dispatch decisions correct: {}/{} ({:.1}%)",
        dispatched_correctly,
        dispatched_total,
        100.0 * dispatched_correctly as f64 / dispatched_total as f64
    );
    println!(
        "crowd-answered images: {} correct, {} wrong",
        crowd_fixed, crowd_broke
    );
    println!(
        "remaining crowd budget: {:.0} cents",
        system.remaining_budget_cents()
    );
}
