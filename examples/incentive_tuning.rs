//! Incentive tuning: use the bandit substrate directly against the
//! simulated crowdsourcing platform and compare incentive policies.
//!
//! ```text
//! cargo run --release --example incentive_tuning
//! ```
//!
//! This example drives the `crowdlearn-bandit` and `crowdlearn-crowd` crates
//! without the rest of the system: it runs the paper's pilot study to show
//! the platform's delay landscape, then pits UCB-ALP, ε-greedy, fixed and
//! random policies against each other on the same budget and reports the
//! mean response delay each achieves.

use crowdlearn_bandit::{
    BanditConfig, CostedBandit, EpsilonGreedy, Exp3, FixedPolicy, RandomPolicy, ThompsonSampling,
    UcbAlp,
};
use crowdlearn_crowd::{IncentiveLevel, PilotConfig, PilotStudy, Platform, PlatformConfig};
use crowdlearn_dataset::{SyntheticImage, TemporalContext};
use crowdlearn_suite::scenarios;

const BUDGET_CENTS: f64 = 1000.0;
const ROUNDS: u64 = 200;

fn main() {
    let (dataset, _stream) = scenarios::paper();
    let images: Vec<&SyntheticImage> = dataset.train().iter().take(60).collect();

    // 1. Characterize the platform, as the paper's pilot study does.
    let mut platform = Platform::new(PlatformConfig::paper().with_seed(7));
    let pilot = PilotStudy::new(PilotConfig::paper()).run(&mut platform, &images);
    println!("pilot delay surface (mean seconds per HIT):");
    print!("{:<10}", "");
    for level in IncentiveLevel::ALL {
        print!("{:>7}", level.to_string());
    }
    println!();
    for ctx in TemporalContext::ALL {
        print!("{:<10}", ctx.to_string());
        for level in IncentiveLevel::ALL {
            print!("{:>7.0}", pilot.cell(ctx, level).mean_delay_secs());
        }
        println!();
    }

    // 2. Run the four policies on identical budgets.
    println!();
    println!(
        "policy comparison: {ROUNDS} queries, {:.0} cent budget ({:.1}c per query)",
        BUDGET_CENTS,
        BUDGET_CENTS / ROUNDS as f64
    );
    let config = || {
        BanditConfig::new(
            TemporalContext::COUNT,
            IncentiveLevel::costs(),
            BUDGET_CENTS,
            ROUNDS,
        )
        .with_context_distribution(vec![0.25; TemporalContext::COUNT])
    };
    let policies: Vec<Box<dyn CostedBandit>> = vec![
        Box::new(UcbAlp::new(config(), 11)),
        Box::new(ThompsonSampling::new(config(), 14)),
        Box::new(Exp3::new(config(), 0.1, 15)),
        Box::new(EpsilonGreedy::new(config(), 0.1, 12)),
        Box::new(FixedPolicy::max_affordable(config())),
        Box::new(RandomPolicy::new(config(), 13)),
    ];

    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "policy", "mean delay", "spent", "answered"
    );
    for mut policy in policies {
        let mut platform = Platform::new(PlatformConfig::paper().with_seed(99));
        // Warm up learning policies with pilot-style observations.
        for pass in 0..8 {
            for ctx in TemporalContext::ALL {
                for level in IncentiveLevel::ALL {
                    let img = images[(pass + level.index()) % images.len()];
                    let r = platform.submit(img, level, ctx);
                    let payoff = (1.0 - r.completion_delay_secs / 1800.0).clamp(0.0, 1.0);
                    policy.observe(ctx.index(), level.index(), payoff);
                }
            }
        }

        let mut total_delay = 0.0;
        let mut answered = 0u64;
        let mut spent = 0.0;
        for round in 0..ROUNDS {
            let ctx = TemporalContext::from_index((round % 4) as usize);
            let Some(action) = policy.select(ctx.index()) else {
                continue;
            };
            let level = IncentiveLevel::from_index(action);
            let img = images[round as usize % images.len()];
            let r = platform.submit(img, level, ctx);
            policy.observe(
                ctx.index(),
                action,
                (1.0 - r.completion_delay_secs / 1800.0).clamp(0.0, 1.0),
            );
            total_delay += r.completion_delay_secs;
            answered += 1;
            spent += f64::from(level.cents());
        }
        println!(
            "{:<16} {:>10.0} s {:>10.0} c {:>12}",
            policy.name(),
            total_delay / answered.max(1) as f64,
            spent,
            answered
        );
    }
}
