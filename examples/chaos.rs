//! Chaos run: a mid-run crowd outage with the breaker and degradation
//! ladder live on a dashboard, checkpointed through bytes *during* the
//! outage.
//!
//! ```text
//! cargo run --release --example chaos
//! ```
//!
//! The fault plan is a compound incident: the crowd platform goes dark for
//! three sensing cycles, half the worker pool walks off as it recovers,
//! a stretch of answers is silently dropped (exercising the timeout and
//! abandonment paths), and the budget takes a clawback shock. The driver
//! answers with the crowd-path circuit breaker and the degradation ladder
//! down to AI-only labeling — and because every fault is a pure function
//! of virtual time plus a dedicated seeded RNG stream, the whole incident
//! survives a checkpoint/restore byte-identically, even mid-outage.

use crowdlearn::CrowdLearnConfig;
use crowdlearn_runtime::{
    BreakerState, FaultEpisode, FaultPlan, MetricsTap, PipelinedSystem, RunBound, RuntimeSnapshot,
};
use crowdlearn_suite::scenarios;

fn main() {
    let (dataset, stream) = scenarios::demo(7);

    // A compound incident over the demo's 10-cycle (600 s cadence) stream.
    let plan = FaultPlan::new(
        0xC4A05,
        vec![
            FaultEpisode::PlatformOutage {
                from_secs: 300.0,
                until_secs: 2100.0,
            },
            FaultEpisode::WorkerAttrition {
                fraction: 0.5,
                from_secs: 2100.0,
                until_secs: 3900.0,
            },
            FaultEpisode::AnswerLoss {
                prob: 0.4,
                from_secs: 3900.0,
                until_secs: 5400.0,
            },
            FaultEpisode::BudgetShock {
                at_secs: 900.0,
                cents: 30.0,
            },
        ],
    );
    let runtime = scenarios::demo_runtime().with_faults(plan);
    println!("fault plan: {} episodes, seed {:#x}", 4, 0xC4A05u64);

    // Reference: the same incident, uninterrupted.
    let mut reference = PipelinedSystem::new(&dataset, CrowdLearnConfig::paper(), runtime.clone());
    reference.attach_metrics_tap(MetricsTap::new());
    let expected = reference.run(&dataset, &stream);

    // Chaos run: drive in slices, watch the breaker and ladder live, and
    // checkpoint through serialized bytes while the outage is still open.
    let mut system = PipelinedSystem::new(&dataset, CrowdLearnConfig::paper(), runtime);
    system.attach_metrics_tap(MetricsTap::new());
    println!("\n   virtual s |   breaker | parked | degraded | abandoned | in-flight");
    println!("   ----------+-----------+--------+----------+-----------+----------");
    let mut report = None;
    let mut checkpointed = false;
    let mut tick_secs = 600.0;
    while report.is_none() {
        report = system.run_until(&dataset, &stream, RunBound::VirtualTime(tick_secs));
        tick_secs += 600.0;
        let (now, breaker, parked) = match report.as_ref() {
            None => (
                system.virtual_now_secs().expect("running"),
                system.breaker_state().expect("running"),
                system.parked_cycles().expect("running"),
            ),
            Some(r) => (r.makespan_secs, BreakerState::Closed, 0),
        };
        let tap = system
            .metrics_tap()
            .or_else(|| report.as_ref().and_then(|r| r.metrics.as_ref()))
            .expect("tap attached above");
        println!(
            "   {now:8.0} s | {:>9} | {parked:6} | {:8} | {:9} | {:9}",
            format!("{breaker:?}"),
            tap.degraded_cycles(),
            tap.hits_abandoned(),
            tap.hits_in_flight(),
        );

        // Mid-outage, breaker open: serialize, drop the live system, and
        // restore from bytes — as a crashed-and-restarted process would.
        if !checkpointed && report.is_none() && breaker == BreakerState::Open {
            let bytes = system
                .snapshot()
                .expect("the demo configuration is checkpointable")
                .to_bytes();
            println!(
                "   --- checkpoint at {now:.0} s (breaker open): {} bytes, restoring ---",
                bytes.len()
            );
            drop(system);
            let snapshot = RuntimeSnapshot::from_bytes(&bytes).expect("frame validates");
            system = PipelinedSystem::resume(&snapshot, &stream).expect("payload validates");
            checkpointed = true;
        }
    }
    let report = report.expect("loop exits with the report");
    assert!(checkpointed, "the outage must open the breaker mid-run");

    println!(
        "\nincident summary: {} posts rejected, {} degraded (AI-only) cycles,",
        report.posts_rejected, report.degraded_cycles
    );
    let tap = report.metrics.as_ref().expect("tap rides the report");
    println!(
        "   {} fault episodes started, {} breaker transitions, {} HITs abandoned",
        tap.faults_started(),
        tap.breaker_transitions(),
        tap.hits_abandoned(),
    );
    println!(
        "makespan {:.0} virtual s, accuracy {:.3}",
        report.makespan_secs,
        report.report.accuracy()
    );

    // The run degraded rather than stalling, and the checkpoint taken
    // during the outage changed nothing about the result.
    assert!(report.posts_rejected > 0, "the outage must reject posts");
    assert!(report.degraded_cycles > 0, "the ladder must engage");
    assert_eq!(
        format!("{report:?}"),
        format!("{expected:?}"),
        "mid-outage restore diverged from the uninterrupted run"
    );
    println!("\nladder engaged and the mid-outage restore is byte-identical ✓");
}
