//! Adaptive in-flight window: watch the controller re-bet the pipeline
//! window live, next to the streamed delay quantiles it is acting on.
//!
//! ```text
//! cargo run --release --example adaptive_window
//! ```
//!
//! The crowd here is bimodal: morning/afternoon HITs take ~40 minutes,
//! evening/midnight HITs ~1 minute, and contexts rotate cycle by cycle.
//! A static window is the wrong bet half the day. With
//! `WindowPolicy::Adaptive` the driver consults the metrics tap at every
//! cycle close — no wall clock, no RNG — widening when the watched delay
//! percentile blows past the sensing cadence with cycles queued, and
//! narrowing back once fast contexts pull the percentile down and the
//! backlog drains.

use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_crowd::{DelayModel, IncentiveLevel, PlatformConfig};
use crowdlearn_dataset::TemporalContext;
use crowdlearn_runtime::{PipelinedSystem, RunBound, RuntimeConfig, WindowPolicy};
use crowdlearn_suite::scenarios;

fn main() {
    let (dataset, stream) = scenarios::demo(7);

    // Bimodal diurnal crowd: slow days, fast nights.
    let delays = DelayModel::from_table(
        [
            [2400.0; IncentiveLevel::COUNT],
            [2400.0; IncentiveLevel::COUNT],
            [60.0; IncentiveLevel::COUNT],
            [60.0; IncentiveLevel::COUNT],
        ],
        0.15,
    );
    let platform = PlatformConfig::paper().with_delay_model(delays);

    let policy = WindowPolicy::adaptive(1, 6);
    println!("policy: {policy:?}\n");

    let system =
        CrowdLearnSystem::with_platform_config(&dataset, CrowdLearnConfig::paper(), platform);
    let mut system =
        PipelinedSystem::from_system(system, RuntimeConfig::paper().with_window_policy(policy));

    // Drive the run in slices, polling the controller between them. The
    // adaptive policy auto-attaches a tap at start, so the quantiles it
    // watches are also ours to read.
    println!("    events |  virtual s | window | decision | p50 delay | p90 delay | in-flight");
    println!("   --------+------------+--------+----------+-----------+-----------+----------");
    let mut report = None;
    while report.is_none() {
        report = system.run_until(&dataset, &stream, RunBound::Events(40));
        let tap = system
            .metrics_tap()
            .or_else(|| report.as_ref().and_then(|r| r.metrics.as_ref()))
            .expect("adaptive runs attach a tap at start");
        let fmt_q = |q: f64| match tap.crowd_delay().quantile(q) {
            Some(v) => format!("{v:7.0} s"),
            None => "      — ".to_string(),
        };
        println!(
            "   {:7} | {:8.0} s | {:6} | {:>8} | {} | {} | {:9}",
            tap.records(),
            tap.last_at_secs(),
            system
                .effective_window()
                .map(|w| w.to_string())
                .unwrap_or_else(|| "—".to_string()),
            system
                .last_window_decision()
                .map(|d| format!("{d:?}"))
                .unwrap_or_else(|| "—".to_string()),
            fmt_q(0.5),
            fmt_q(0.9),
            tap.hits_in_flight(),
        );
    }
    let report = report.expect("loop exits with the report");

    // One trajectory entry per cycle close: the controller's full history.
    println!("\nwindow trajectory (one entry per cycle close):");
    println!("   {:?}", report.window_trajectory);
    let peak = report.window_trajectory.iter().max().copied().unwrap_or(0);
    println!(
        "\nmakespan {:.0} virtual s over {} cycles; window peaked at {peak}",
        report.makespan_secs,
        report.window_trajectory.len(),
    );

    let tap = report.metrics.as_ref().expect("tap rides the report");
    println!("\ncrowd delay by temporal context (what the controller saw):");
    for context in TemporalContext::ALL {
        let sketch = tap.crowd_delay_in(context);
        match sketch.quantile(0.9) {
            Some(p90) => println!("   {context:?}: n={}, p90 {p90:.0} s", sketch.len()),
            None => println!("   {context:?}: no queries"),
        }
    }

    // The trajectory covers every cycle and the controller really moved.
    assert_eq!(report.window_trajectory.len(), stream.cycles().len());
    assert!(peak > 1, "the bimodal crowd must drive the window open");
    println!("\ncontroller moved and the trajectory covers every cycle ✓");
}
