//! Checkpoint/resume: pause the event-driven runtime mid-run, serialize it,
//! and finish the run from the snapshot — byte-identically.
//!
//! ```text
//! cargo run --release --example checkpoint_resume
//! ```
//!
//! Long sweeps (and preemptible compute) want the pipelined runtime to
//! survive a process restart. This example drives half the event stream,
//! snapshots at the event boundary, drops the original system entirely,
//! restores from the serialized bytes as a crashed-and-restarted process
//! would, and verifies the resumed run's report matches an uninterrupted
//! reference run byte for byte.

use crowdlearn::CrowdLearnConfig;
use crowdlearn_runtime::{PipelinedSystem, RunBound, RuntimeSnapshot};
use crowdlearn_suite::scenarios;

fn main() {
    // A short stream with a HIT timeout so the checkpoint covers the whole
    // event vocabulary: arrivals, inference, HITs in flight, timeouts,
    // escalated reposts, and waited-out late answers.
    let (dataset, stream) = scenarios::demo(7);
    let runtime = scenarios::demo_runtime();

    // Reference: one uninterrupted run.
    let mut reference = PipelinedSystem::new(&dataset, CrowdLearnConfig::paper(), runtime.clone());
    let expected = reference.run(&dataset, &stream);
    println!(
        "reference run:   {} events, makespan {:.0} s, accuracy {:.3}",
        expected.events_processed,
        expected.makespan_secs,
        expected.report.accuracy()
    );

    // Interrupted run: stop halfway through the event stream...
    let mut system = PipelinedSystem::new(&dataset, CrowdLearnConfig::paper(), runtime.clone());
    let half = expected.events_processed / 2;
    let paused = system.run_until(&dataset, &stream, RunBound::Events(half));
    assert!(paused.is_none(), "half the events must not drain the queue");
    println!(
        "paused:          {} events, virtual time {:.0} s",
        system.events_processed().expect("running"),
        system.virtual_now_secs().expect("running")
    );

    // ...serialize, discard the live system, restore from bytes.
    let bytes = system
        .snapshot()
        .expect("the paper configuration is checkpointable")
        .to_bytes();
    println!(
        "snapshot:        {} bytes (framed + checksummed)",
        bytes.len()
    );
    drop(system);

    let snapshot = RuntimeSnapshot::from_bytes(&bytes).expect("frame validates");
    let mut resumed = PipelinedSystem::resume(&snapshot, &stream).expect("payload validates");
    let report = resumed.run(&dataset, &stream);
    println!(
        "resumed run:     {} events, makespan {:.0} s, accuracy {:.3}",
        report.events_processed,
        report.makespan_secs,
        report.report.accuracy()
    );

    assert_eq!(
        format!("{report:?}"),
        format!("{expected:?}"),
        "resumed run diverged from the uninterrupted reference"
    );
    println!("resume is byte-identical to the uninterrupted run ✓");
}
