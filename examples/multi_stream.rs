//! Multi-stream fleet: three concurrent disasters on one worker pool and
//! one budget, with a mid-run fleet checkpoint.
//!
//! ```text
//! cargo run --release --example multi_stream
//! ```
//!
//! The paper evaluates one disaster at a time; a deployed platform serves
//! several at once, and they compete — for the same crowd workers and the
//! same requester budget. This example boots a three-shard
//! `FleetOrchestrator` (three independently seeded disaster streams),
//! splits the fleet budget by priority (the freshest disaster gets the
//! biggest quota), runs the merged deterministic event loop, pauses halfway
//! to checkpoint the *whole fleet* through bytes, resumes, and prints the
//! per-shard attribution: who got which workers, who spent what, and how
//! much queue wait cross-stream contention added.

use std::error::Error;

use crowdlearn::CrowdLearnConfig;
use crowdlearn_runtime::{
    ArbitrationPolicy, FleetConfig, FleetOrchestrator, FleetSnapshot, RunBound, ShardSpec,
};
use crowdlearn_suite::scenarios;

fn main() -> Result<(), Box<dyn Error>> {
    // Three disasters, three independently seeded streams and platforms.
    let seeds = [7u64, 8, 9];
    let (datasets, streams): (Vec<_>, Vec<_>) = seeds.iter().map(|&s| scenarios::demo(s)).unzip();
    let specs: Vec<ShardSpec> = seeds
        .iter()
        .map(|_| ShardSpec::new(CrowdLearnConfig::paper(), scenarios::demo_runtime()))
        .collect();

    // One budget for the whole fleet, split 3:2:1 by disaster priority.
    let fleet_config = FleetConfig::new(3.0 * CrowdLearnConfig::paper().budget_cents)
        .with_arbitration(ArbitrationPolicy::Priority(vec![3.0, 2.0, 1.0]));
    let mut fleet = FleetOrchestrator::new(specs.clone(), fleet_config.clone(), &datasets);
    fleet.attach_metrics_taps();
    println!(
        "fleet: {} shards, {} workers shared, budget {:.0} ¢",
        fleet.shards(),
        fleet.fleet_config().pool_capacity,
        fleet.ledger().fleet_budget_cents()
    );
    for i in 0..fleet.shards() {
        println!(
            "  shard {i}: quota {:>6.0} ¢",
            fleet.ledger().quota_cents(i)
        );
    }

    // Reference: one uninterrupted fleet run.
    let expected = fleet.run(&datasets, &streams);

    // Interrupted run: pause at the halfway event boundary, serialize the
    // whole fleet (every shard + pool + ledger), restore from bytes — the
    // `?`s thread `FleetSnapshotError` through `Box<dyn Error>`.
    let mut fleet = FleetOrchestrator::new(specs, fleet_config, &datasets);
    fleet.attach_metrics_taps();
    let half = expected.events_processed / 2;
    assert!(fleet
        .run_until(&datasets, &streams, RunBound::Events(half))
        .is_none());
    let bytes = fleet.snapshot()?.to_bytes();
    println!(
        "\ncheckpoint at event {half}: {} bytes (3 shard frames + pool + ledger)",
        bytes.len()
    );
    drop(fleet);
    let mut resumed = FleetOrchestrator::resume(&FleetSnapshot::from_bytes(&bytes)?, &streams)?;
    let report = resumed.run(&datasets, &streams);
    assert_eq!(
        format!("{report:?}"),
        format!("{expected:?}"),
        "fleet resume diverged from the uninterrupted run"
    );
    println!("resume is byte-identical to the uninterrupted fleet run ✓");

    // Per-shard attribution: each shard's platform books its own usage
    // under its submitter id, and the fleet ledger audits the quotas.
    println!("\nshard  accuracy  queries  reposts  worker-s   spent ¢   quota ¢  makespan s");
    for (i, shard) in report.shards.iter().enumerate() {
        let platform_usage = resumed.shard_usage(i);
        println!(
            "{i:>5}  {:>8.3}  {:>7}  {:>7}  {:>8.0}  {:>8}  {:>8.0}  {:>10.0}",
            shard.report.accuracy(),
            platform_usage.queries,
            platform_usage.reposts,
            platform_usage.worker_seconds,
            report.ledger.spent_cents(i),
            report.ledger.quota_cents(i),
            shard.makespan_secs,
        );
    }

    let contention = report.contention;
    println!(
        "\ncontention: {} of {} posts queued, {:.0} s total wait ({:.1} s mean), peak {} busy workers",
        contention.waits_applied,
        contention.posts,
        contention.total_wait_secs,
        contention.mean_wait_secs(),
        contention.peak_busy_workers,
    );
    if let Some(rollup) = &report.rollup_crowd_delay {
        println!(
            "fleet crowd delay: n={}, p50 {:.0} s, p90 {:.0} s",
            rollup.len(),
            rollup.quantile(0.5).unwrap_or(f64::NAN),
            rollup.quantile(0.9).unwrap_or(f64::NAN),
        );
    }
    Ok(())
}
