//! Quickstart: boot the full CrowdLearn system and run one evaluation pass.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the smallest end-to-end use of the public API: generate the
//! paper-shaped dataset, build the closed-loop system (committee + QSS +
//! IPD + CQC + MIC over the simulated crowdsourcing platform), stream the
//! 40 sensing cycles, and print the headline numbers.

use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_suite::scenarios;

fn main() {
    // 1. The synthetic stand-in for the paper's 960 Ecuador-earthquake
    //    images (560 train / 400 test, balanced classes), streamed as the
    //    paper's 40 sensing cycles of 10 images each.
    let (dataset, stream) = scenarios::paper();
    println!(
        "dataset: {} images ({} train / {} test)",
        dataset.len(),
        dataset.train().len(),
        dataset.test().len()
    );

    // 2. Boot CrowdLearn. This trains the committee on the training split,
    //    fits the CQC boosting model on training-split crowd responses, and
    //    warms up the incentive bandit — then runs the closed loop.
    let mut system = CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper());
    let report = system.run(&dataset, &stream);

    println!();
    println!("=== CrowdLearn evaluation ===");
    println!("accuracy:        {:.3}", report.accuracy());
    println!("macro F1:        {:.3}", report.macro_f1());
    println!("macro AUC:       {:.3}", report.roc().auc());
    println!(
        "algorithm delay: {:.1} s per cycle",
        report.mean_algorithm_delay_secs()
    );
    if let Some(crowd) = report.mean_crowd_delay_secs() {
        println!("crowd delay:     {crowd:.1} s per cycle");
    }
    println!(
        "crowd spend:     ${:.2} for {} queries",
        report.spent_usd(),
        report.queries_issued
    );
    println!(
        "expert weights:  {:?} (VGG16 / BoVW / DDM)",
        system
            .committee_weights()
            .iter()
            .map(|w| (w * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
}
